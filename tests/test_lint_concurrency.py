"""Tests of the whole-project concurrency analysis (REP201–REP204).

Each rule gets seeded-bug fixtures (the historical shape of the violation)
plus clean counterparts, the annotation grammar is exercised end to end
(``guarded-by`` declarations, ``requires`` contracts, the ``__init__``
pre-spawn exemption), and the model pass is probed on modern syntax the
extractor must not be blind to — walrus aliases, ``match``, ``async with``,
nested functions, multi-line annotated assignments.

Fixture modules are written under basenames the project rules scope to
(``service.py`` / ``session.py`` / ``storage.py`` / ``execution_*.py``);
the scope itself is pinned by ``TestProjectScope``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_file, lint_paths, main


def write_module(tmp_path: Path, relative: str, source: str) -> Path:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes_of(path: Path) -> list[str]:
    return [diagnostic.code for diagnostic in lint_file(path)]


# ----------------------------------------------------------------------
# REP201 — guarded-by discipline
# ----------------------------------------------------------------------
class TestGuardedBy:
    def test_inferred_guard_flags_the_unlocked_write(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def sloppy(self):
                    self._count += 1
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP201"]
        assert diagnostics[0].line == 14
        assert "_count" in diagnostics[0].message

    def test_declared_guard_flags_the_unlocked_read(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Flag:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False  # repro: guarded-by(_lock)

                def check(self):
                    return self._closed
            """,
        )
        assert codes_of(path) == ["REP201"]

    def test_locked_accesses_are_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # repro: guarded-by(_lock)

                def bump(self):
                    with self._lock:
                        self._count += 1

                def read(self):
                    with self._lock:
                        return self._count
            """,
        )
        assert codes_of(path) == []

    def test_init_exempt_before_first_thread_hand_off(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Early:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = 0  # repro: guarded-by(_lock)
                    threading.Thread(target=self.run).start()
                    self._state = 1

                def run(self):
                    with self._lock:
                        self._state = 2
            """,
        )
        diagnostics = lint_file(path)
        # Only the post-spawn write races the new thread; the constructor
        # writes before the hand-off are single-threaded by construction.
        assert [d.code for d in diagnostics] == ["REP201"]
        assert diagnostics[0].line == 9

    def test_requires_contract_satisfies_the_helper(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Helpers:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._total = 0  # repro: guarded-by(_lock)

                def _bump_locked(self):  # repro: requires(_lock)
                    self._total += 1

                def good(self):
                    with self._lock:
                        self._bump_locked()
            """,
        )
        assert codes_of(path) == []

    def test_requires_contract_flags_the_lockless_caller(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Helpers:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._total = 0  # repro: guarded-by(_lock)

                def _bump_locked(self):  # repro: requires(_lock)
                    self._total += 1

                def good(self):
                    with self._lock:
                        self._bump_locked()

                def bad(self):
                    self._bump_locked()
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP201"]
        assert "_bump_locked" in diagnostics[0].message

    def test_unknown_declared_lock_is_itself_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Typo:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0  # repro: guarded-by(_locck)
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP201"]
        assert "names no lock" in diagnostics[0].message

    def test_module_global_guard(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/storage.py",
            """
            import threading

            _lock = threading.Lock()
            _cache = {}  # repro: guarded-by(_lock)

            def put(key, value):
                with _lock:
                    _cache[key] = value

            def bad_get(key):
                return _cache.get(key)
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP201"]
        assert diagnostics[0].line == 12

    def test_condition_alias_counts_as_holding_the_lock(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._wake = threading.Condition(self._lock)
                    self._items = []  # repro: guarded-by(_lock)

                def push(self, item):
                    with self._wake:  # same lock as _lock
                        self._items.append(item)
                        self._wake.notify()
            """,
        )
        assert codes_of(path) == []

    def test_suppression_comment_silences_the_finding(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Flag:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False  # repro: guarded-by(_lock)

                def check(self):
                    return self._closed  # repro-lint: disable=REP201
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# REP202 — lock-order consistency
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_inverted_nesting_is_one_cycle(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP202"]
        assert "deadlock" in diagnostics[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
        )
        assert codes_of(path) == []

    def test_self_reacquire_on_plain_lock(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Re:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP202"]
        assert "re-acquires" in diagnostics[0].message

    def test_rlock_reacquire_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Re:
                def __init__(self):
                    self._lock = threading.RLock()

                def fine(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        assert codes_of(path) == []

    def test_cycle_through_call_edges(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/storage.py",
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def forward():
                with _a:
                    locked_b()

            def locked_b():
                with _b:
                    pass

            def backward():
                with _b:
                    with _a:
                        pass
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP202"]

    def test_callee_reacquiring_held_lock(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Nested:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP202"]
        assert "may re-acquire" in diagnostics[0].message

    def test_cross_file_cycle_needs_lint_paths(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service.py",
            """
            import threading

            from .storage import Back

            class Front:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._worker = Back(self)

                def forward(self):
                    with self._lock:
                        self._worker.locked()

                def poke(self):
                    with self._lock:
                        pass
            """,
        )
        write_module(
            tmp_path,
            "repro/storage.py",
            """
            import threading

            class Back:
                def __init__(self, front: "Front"):
                    self._b = threading.Lock()
                    self._front = front

                def locked(self):
                    with self._b:
                        pass

                def reverse(self):
                    with self._b:
                        self._front.poke()
            """,
        )
        result = lint_paths([tmp_path])
        assert [d.code for d in result.diagnostics] == ["REP202"]


# ----------------------------------------------------------------------
# REP203 — condition-variable discipline
# ----------------------------------------------------------------------
class TestConditionDiscipline:
    def test_wait_outside_a_loop(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)

                def bad(self):
                    with self._cv:
                        self._cv.wait()
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP203"]
        assert "while" in diagnostics[0].message

    def test_wait_in_while_under_lock_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self._ready = False  # repro: guarded-by(_lock)

                def good(self):
                    with self._cv:
                        while not self._ready:
                            self._cv.wait()
            """,
        )
        assert codes_of(path) == []

    def test_wait_for_carries_its_own_loop(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._cv = threading.Condition()

                def good(self):
                    with self._cv:
                        self._cv.wait_for(lambda: True)
            """,
        )
        assert codes_of(path) == []

    def test_notify_without_the_lock(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import threading

            class Waker:
                def __init__(self):
                    self._cv = threading.Condition()

                def bad(self):
                    self._cv.notify()
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP203"]
        assert "notify" in diagnostics[0].message


# ----------------------------------------------------------------------
# REP204 — future-resolution totality
# ----------------------------------------------------------------------
class TestFutureTotality:
    def test_raise_past_a_pending_future(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            from concurrent.futures import Future

            def admit(flag):
                future = Future()
                if flag:
                    raise ValueError("rejected")
                future.set_result(1)
                return future
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP204"]
        assert diagnostics[0].line == 7
        assert "pending" in diagnostics[0].message

    def test_every_path_resolves_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            from concurrent.futures import Future

            def admit(flag):
                future = Future()
                if flag:
                    future.set_exception(ValueError("rejected"))
                else:
                    future.set_result(1)
                return future
            """,
        )
        assert codes_of(path) == []

    def test_hand_off_transfers_responsibility(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            from concurrent.futures import Future

            def enqueue(queue):
                future = Future()
                queue.append(future)
                return future
            """,
        )
        assert codes_of(path) == []

    def test_fall_off_the_end_while_pending(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            from concurrent.futures import Future

            def leak():
                future = Future()
                print("made one")
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP204"]

    def test_double_resolve(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            from concurrent.futures import Future

            def twice():
                future = Future()
                future.set_result(1)
                future.set_result(2)
                return future
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP204"]
        assert "resolved" in diagnostics[0].message

    def test_ownership_flows_through_a_wrapper(self, tmp_path):
        # The service.py bug shape: the future is wrapped in a request
        # record, and the record is dropped by a rejection raise.
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            from concurrent.futures import Future

            class Request:
                def __init__(self, future):
                    self.future = future

            def admit(queue, full):
                future = Future()
                request = Request(future)
                if full:
                    raise RuntimeError("queue full")
                queue.append(request)
                return future
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP204"]
        assert diagnostics[0].line == 12


# ----------------------------------------------------------------------
# Scope: project rules only look at the concurrent modules
# ----------------------------------------------------------------------
class TestProjectScope:
    VIOLATION = """
        import threading

        class Flag:
            def __init__(self):
                self._lock = threading.Lock()
                self._closed = False  # repro: guarded-by(_lock)

            def check(self):
                return self._closed
        """

    def test_non_service_module_is_out_of_scope(self, tmp_path):
        path = write_module(tmp_path, "repro/core/util.py", self.VIOLATION)
        assert codes_of(path) == []

    def test_test_files_are_out_of_scope(self, tmp_path):
        path = write_module(tmp_path, "tests/test_widget.py", self.VIOLATION)
        assert codes_of(path) == []

    def test_execution_variants_are_in_scope(self, tmp_path):
        path = write_module(tmp_path, "repro/execution_sharded.py", self.VIOLATION)
        assert codes_of(path) == ["REP201"]


# ----------------------------------------------------------------------
# Model blind spots: modern syntax the extractor must see through
# ----------------------------------------------------------------------
class TestModelBlindSpots:
    def test_self_alias_is_tracked(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Aliased:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # repro: guarded-by(_lock)

                def sneaky(self):
                    s = self
                    s._n += 1
            """,
        )
        assert codes_of(path) == ["REP201"]

    def test_walrus_alias_is_tracked(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Aliased:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # repro: guarded-by(_lock)

                def walrus(self):
                    if (s := self) is not None:
                        s._n += 1
            """,
        )
        assert codes_of(path) == ["REP201"]

    def test_match_arms_are_walked(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Matcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # repro: guarded-by(_lock)

                def apply(self, command):
                    match command:
                        case "add":
                            self._n += 1
                        case _:
                            pass
            """,
        )
        assert codes_of(path) == ["REP201"]

    def test_async_with_holds_the_lock(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Awaited:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # repro: guarded-by(_lock)

                async def apply(self):
                    async with self._lock:
                        self._n += 1
            """,
        )
        assert codes_of(path) == []

    def test_nested_function_accesses_are_deferred(self, tmp_path):
        # A closure may run on another thread at an unknowable time;
        # REP201 neither trusts nor flags its accesses (documented
        # over-approximation cut), so this is clean.
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Deferred:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # repro: guarded-by(_lock)

                def maker(self):
                    def worker():
                        self._n += 1
                    return worker
            """,
        )
        assert codes_of(path) == []

    def test_multi_line_declaration_still_declares(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Wide:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table: dict[
                        str, int
                    ] = {}  # repro: guarded-by(_lock)

                def bad(self):
                    return self._table
            """,
        )
        assert codes_of(path) == ["REP201"]

    def test_nested_class_does_not_confuse_the_model(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Outer:
                class Inner:
                    pass

                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # repro: guarded-by(_lock)

                def bump(self):
                    with self._lock:
                        self._n += 1
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCommandLine:
    def test_rep2xx_diagnostics_carry_file_line_col(self, tmp_path, capsys):
        path = write_module(
            tmp_path,
            "repro/session.py",
            """
            import threading

            class Flag:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False  # repro: guarded-by(_lock)

                def check(self):
                    return self._closed
            """,
        )
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert f"{path}:10:16: REP201" in captured.out
        assert "1 diagnostic" in captured.err

    def test_list_rules_prints_the_full_ledger(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP000", "REP101", "REP201", "REP202", "REP203", "REP204"):
            assert code in out
        # Every real rule names the historical bug class it pins.
        assert "history:" in out
        assert "guarded-by" in out
