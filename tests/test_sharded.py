"""Tests for the genuinely sharded execution tier.

The contract under test (see ``src/repro/execution_sharded.py``): the
``"sharded"`` backend partitions the walk operator's rows across worker
processes with the k-machine hash partition and must still produce
detections, cost totals and serialized reports **bit-identical** to the
serial ``batched`` backend at every shard count — only the wall clock and
the exchange counters in the report metadata may differ.  The exchange
counters themselves must reconcile with what the
:class:`~repro.kmachine.simulator.KMachineNetwork` charges for the same
flooding pattern on the same partition.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import RunConfig, detect
from repro.exceptions import RandomWalkError
from repro.execution_sharded import (
    ShardedBatchedWalk,
    ShardedWalkPool,
    detect_batched_sharded,
)
from repro.graphs import Graph, planted_partition_graph, ppm_expected_conductance
from repro.kmachine.partition import RandomVertexPartition
from repro.kmachine.simulator import KMachineNetwork
from repro.randomwalk import BatchedWalkDistribution

WORKER_COUNTS = (1, 2, 4)

#: The computed parts of a serialized report, minus ``backend`` (the name
#: legitimately differs between the serial and sharded runs).
PAYLOAD_KEYS = ("detection", "phase_costs", "total_cost", "artifacts", "params")


def payload(report) -> dict:
    data = report.to_dict()
    return {key: data[key] for key in PAYLOAD_KEYS}


@pytest.fixture(scope="module")
def ppm():
    """A small PPM instance plus its analytic conductance hint."""
    n = 256
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    instance = planted_partition_graph(n, 2, p, q, seed=7)
    delta = ppm_expected_conductance(n, 2, p, q)
    return instance, delta


# ----------------------------------------------------------------------
# The sharded walk itself: bit-identical stepping
# ----------------------------------------------------------------------
class TestShardedWalk:
    @pytest.mark.parametrize("shards", WORKER_COUNTS)
    def test_steps_bit_identical_to_serial_walk(self, ppm, shards):
        instance, _ = ppm
        sources = [0, 17, 130, 255]
        serial = BatchedWalkDistribution(instance.graph, sources)
        with ShardedWalkPool(instance.graph, shards) as pool:
            walk = pool.make_walk(sources)
            for _ in range(4):
                serial.step()
                walk.step()
                assert np.array_equal(
                    np.asarray(walk.probabilities()),
                    np.asarray(serial.probabilities()),
                )

    @pytest.mark.parametrize("lazy", [False, True])
    def test_lazy_operator_matches_serial(self, ppm, lazy):
        instance, _ = ppm
        sources = [3, 99]
        serial = BatchedWalkDistribution(instance.graph, sources, lazy=lazy)
        with ShardedWalkPool(instance.graph, 2, lazy=lazy) as pool:
            walk = pool.make_walk(sources)
            serial.step(3)
            walk.step(3)
            assert np.array_equal(
                np.asarray(walk.probabilities()),
                np.asarray(serial.probabilities()),
            )

    def test_column_and_columns_match_serial_semantics(self, ppm):
        instance, _ = ppm
        sources = [5, 40, 200]
        serial = BatchedWalkDistribution(instance.graph, sources)
        with ShardedWalkPool(instance.graph, 2) as pool:
            walk = pool.make_walk(sources)
            serial.step()
            walk.step()
            for index in range(len(sources)):
                assert np.array_equal(walk.column(index), serial.column(index))
            assert np.array_equal(walk.columns([2, 0]), serial.columns([2, 0]))
            assert not walk.column(0).flags.writeable
            assert not walk.columns([1]).flags.writeable
            assert not walk.probabilities().flags.writeable

    def test_retain_narrows_like_serial(self, ppm):
        instance, _ = ppm
        sources = [5, 40, 200, 17]
        serial = BatchedWalkDistribution(instance.graph, sources)
        with ShardedWalkPool(instance.graph, 2) as pool:
            walk = pool.make_walk(sources)
            serial.step(2)
            walk.step(2)
            serial.retain([3, 1])
            walk.retain([3, 1])
            serial.step()
            walk.step()
            assert np.array_equal(
                np.asarray(walk.probabilities()),
                np.asarray(serial.probabilities()),
            )

    def test_retain_rejects_empty_and_out_of_range(self, ppm):
        instance, _ = ppm
        with ShardedWalkPool(instance.graph, 2) as pool:
            walk = pool.make_walk([1, 2])
            with pytest.raises(RandomWalkError):
                walk.retain([])
            with pytest.raises(RandomWalkError):
                walk.retain([5])
            with pytest.raises(RandomWalkError):
                walk.column(9)

    def test_sources_validated(self, ppm):
        instance, _ = ppm
        with ShardedWalkPool(instance.graph, 2) as pool:
            with pytest.raises(RandomWalkError):
                pool.make_walk([])
            with pytest.raises(RandomWalkError):
                pool.make_walk([instance.graph.num_vertices])

    def test_more_shards_than_vertices(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        serial = BatchedWalkDistribution(graph, [0, 2])
        with ShardedWalkPool(graph, 4) as pool:
            walk = pool.make_walk([0, 2])
            serial.step(3)
            walk.step(3)
            assert np.array_equal(
                np.asarray(walk.probabilities()),
                np.asarray(serial.probabilities()),
            )

    def test_close_is_idempotent(self, ppm):
        instance, _ = ppm
        pool = ShardedWalkPool(instance.graph, 2)
        pool.close()
        pool.close()


# ----------------------------------------------------------------------
# Backend equivalence through the facade
# ----------------------------------------------------------------------
class TestShardedBackendEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_report_identical_to_serial_batched(self, ppm, workers):
        instance, delta = ppm
        base = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=11, max_seeds=4),
        )
        sharded = detect(
            instance.graph,
            backend="sharded",
            delta_hint=delta,
            config=RunConfig(seed=11, max_seeds=4, workers=workers),
        )
        base_payload = payload(base)
        sharded_payload = payload(sharded)
        assert sharded_payload == base_payload
        assert sharded.backend == "sharded"
        assert sharded.metadata["shard_processes"] == workers

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_final_distributions_bit_identical(self, ppm, workers):
        instance, delta = ppm
        config = RunConfig(seed=11, max_seeds=3, capture_distributions=True)
        base = detect(
            instance.graph, backend="batched", delta_hint=delta, config=config
        )
        sharded = detect(
            instance.graph,
            backend="sharded",
            delta_hint=delta,
            config=config.with_overrides(workers=workers),
        )
        assert (
            sharded.artifacts["final_distributions"]
            == base.artifacts["final_distributions"]
        )

    def test_explicit_seeds_identical(self, ppm):
        instance, delta = ppm
        base = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=(3, 200, 77)),
        )
        sharded = detect(
            instance.graph,
            backend="sharded",
            delta_hint=delta,
            config=RunConfig(seeds=(3, 200, 77), workers=2),
        )
        assert payload(sharded) == payload(base)

    def test_partition_seed_changes_exchange_not_results(self, ppm):
        instance, delta = ppm
        reports = [
            detect(
                instance.graph,
                backend="sharded",
                delta_hint=delta,
                config=RunConfig(
                    seed=11, max_seeds=3, workers=2, partition_seed=salt
                ),
            )
            for salt in (0, 1)
        ]
        assert payload(reports[0]) == payload(reports[1])
        # The partition moved (different cross-arc count) but the results
        # did not: the exchange pattern is the only thing the salt touches.
        # (Boundary *pairs* can coincide — on this dense instance every
        # vertex has a cross neighbour at k=2 under any salt.)
        exchanges = [report.metadata["exchange"] for report in reports]
        assert exchanges[0]["cross_arcs"] != exchanges[1]["cross_arcs"]

    def test_trivial_graphs_take_inline_path(self):
        for graph in (Graph(0, []), Graph(5, [])):
            base = detect(graph, backend="batched", config=RunConfig(seed=1))
            sharded = detect(
                graph, backend="sharded", config=RunConfig(seed=1, workers=2)
            )
            assert payload(sharded) == payload(base)
            assert sharded.metadata["shard_processes"] == 0
            assert sharded.metadata["exchange"] == {}

    def test_outcome_function_directly(self, ppm):
        instance, delta = ppm
        outcome = detect_batched_sharded(
            instance.graph, None, delta, seed=5, max_seeds=2, workers=2
        )
        assert outcome.detection.num_communities >= 1
        assert outcome.extras["executor"] == "sharded"
        assert outcome.extras["exchange"]["machines"] == 2


# ----------------------------------------------------------------------
# Exchange accounting, reconciled with the k-machine simulator
# ----------------------------------------------------------------------
class TestExchangeReconciliation:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_boundary_pairs_match_independent_count(self, ppm, workers):
        """The pool's per-column boundary pairs equal the distinct cross
        ``(vertex, destination machine)`` pairs of the graph's arcs."""
        instance, _ = ppm
        graph = instance.graph
        partition = RandomVertexPartition(
            graph.num_vertices, workers, method="hash", seed=None
        )
        assignment = partition.assignment
        indptr, indices, _ = graph.csr_arrays()
        tails = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
        )
        crossing = assignment[tails] != assignment[indices]
        # Each foreign vertex's value is gathered once per needing machine:
        # dedup arcs to (source vertex, destination machine).
        pairs = np.unique(
            np.stack(
                [tails[crossing], assignment[indices[crossing]]], axis=1
            ),
            axis=0,
        )
        with ShardedWalkPool(graph, workers) as pool:
            report = pool.exchange_report()
            assert report["boundary_pairs_per_column_step"] == len(pairs)
            assert report["boundary_pairs_per_column_step"] <= report["cross_arcs"]

    @pytest.mark.parametrize("workers", (2, 4))
    def test_simulated_costs_match_kmachine_network(self, ppm, workers):
        instance, _ = ppm
        graph = instance.graph
        partition = RandomVertexPartition(
            graph.num_vertices, workers, method="hash", seed=None
        )
        network = KMachineNetwork(partition)
        tails = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
        )
        loads, inter, local = network.link_loads(tails, graph.csr_arrays()[1])
        rounds = network.rounds_for_loads(loads)
        with ShardedWalkPool(graph, workers) as pool:
            walk = pool.make_walk([0, 1, 2])
            walk.step(2)
            report = pool.exchange_report()
        assert report["cross_arcs"] == inter
        assert report["local_arcs"] == local
        assert report["simulated_rounds_per_step"] == rounds
        assert report["simulated_inter_machine_messages"] == inter * 2
        assert report["simulated_local_messages"] == local * 2
        assert report["simulated_rounds"] == rounds * 2

    def test_totals_scale_with_steps_and_columns(self, ppm):
        instance, _ = ppm
        graph = instance.graph
        with ShardedWalkPool(graph, 2) as pool:
            per_column = pool.exchange_report()["boundary_pairs_per_column_step"]
            walk = pool.make_walk([0, 1, 2, 3])
            walk.step()
            walk.retain([0, 1])
            walk.step()
            report = pool.exchange_report()
        assert per_column > 0
        assert report["steps"] == 2
        assert report["boundary_values"] == per_column * 4 + per_column * 2
        assert report["boundary_bytes"] == report["boundary_values"] * 8
        assert len(report["per_step"]) == 2
        assert report["per_step"][0]["columns"] == 4
        assert report["per_step"][1]["columns"] == 2

    def test_single_shard_has_no_boundary(self, ppm):
        instance, _ = ppm
        with ShardedWalkPool(instance.graph, 1) as pool:
            walk = pool.make_walk([0])
            walk.step()
            report = pool.exchange_report()
        assert report["boundary_pairs_per_column_step"] == 0
        assert report["boundary_values"] == 0
        assert report["cross_arcs"] == 0

    def test_exchange_rides_in_run_report_json(self, ppm):
        instance, delta = ppm
        report = detect(
            instance.graph,
            backend="sharded",
            delta_hint=delta,
            config=RunConfig(seed=11, max_seeds=2, workers=2),
        )
        import json

        round_tripped = json.loads(report.to_json())
        exchange = round_tripped["metadata"]["exchange"]
        assert exchange["machines"] == 2
        assert exchange["steps"] > 0
        assert (
            exchange["boundary_pairs_per_column_step"] <= exchange["cross_arcs"]
        )
