"""Tests for the k-machine model: partition, simulator, conversion theorem, CDRW."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MachineError
from repro.graphs import ppm_expected_conductance
from repro.kmachine import (
    KMachineNetwork,
    RandomVertexPartition,
    cdrw_kmachine_round_bound,
    conversion_theorem_rounds,
    detect_communities_kmachine,
    detect_community_kmachine,
    dominant_term,
)
from repro.metrics import average_f_score


class TestRandomVertexPartition:
    def test_hash_method_deterministic(self):
        a = RandomVertexPartition(100, 8, method="hash")
        b = RandomVertexPartition(100, 8, method="hash")
        assert np.array_equal(a.assignment, b.assignment)

    def test_random_method_uses_seed(self):
        a = RandomVertexPartition(100, 8, method="random", seed=1)
        b = RandomVertexPartition(100, 8, method="random", seed=1)
        c = RandomVertexPartition(100, 8, method="random", seed=2)
        assert np.array_equal(a.assignment, b.assignment)
        assert not np.array_equal(a.assignment, c.assignment)

    def test_home_machine_and_vertices_of_consistent(self):
        partition = RandomVertexPartition(50, 4, method="hash")
        for machine in range(4):
            for vertex in partition.vertices_of(machine):
                assert partition.home_machine(int(vertex)) == machine

    def test_assignments_within_range(self):
        partition = RandomVertexPartition(200, 7, method="hash")
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < 7

    def test_balance_report(self, small_gnp_graph):
        partition = RandomVertexPartition(small_gnp_graph.num_vertices, 4, method="hash")
        report = partition.balance_report(small_gnp_graph)
        assert sum(report.vertices_per_machine) == small_gnp_graph.num_vertices
        assert sum(report.edges_per_machine) == small_gnp_graph.volume
        assert report.max_vertex_imbalance < 2.0

    def test_validation(self):
        with pytest.raises(MachineError):
            RandomVertexPartition(10, 0)
        with pytest.raises(MachineError):
            RandomVertexPartition(10, 2, method="roundrobin")
        partition = RandomVertexPartition(10, 2)
        with pytest.raises(MachineError):
            partition.home_machine(20)
        with pytest.raises(MachineError):
            partition.vertices_of(5)


class TestKMachineNetwork:
    def test_link_loads_and_local_messages(self):
        partition = RandomVertexPartition(4, 2, method="random", seed=0)
        network = KMachineNetwork(partition)
        assignment = partition.assignment
        sources = np.array([0, 1, 2, 3])
        targets = np.array([1, 2, 3, 0])
        loads, inter, local = network.link_loads(sources, targets)
        assert inter + local == 4
        assert loads.sum() == inter

    def test_route_congest_round_counts(self):
        partition = RandomVertexPartition(10, 2, method="random", seed=3)
        network = KMachineNetwork(partition)
        sources = np.arange(10)
        targets = (np.arange(10) + 1) % 10
        charged = network.route_congest_round(sources, targets)
        cost = network.cost()
        assert cost.congest_rounds_routed == 1
        assert cost.rounds == charged
        assert cost.inter_machine_messages + cost.local_messages == 10

    def test_repeat_multiplies_costs(self):
        partition = RandomVertexPartition(10, 2, method="random", seed=3)
        network = KMachineNetwork(partition)
        sources = np.arange(10)
        targets = (np.arange(10) + 1) % 10
        once = network.route_congest_round(sources, targets, repeat=1)
        network.reset()
        thrice = network.route_congest_round(sources, targets, repeat=3)
        assert thrice == 3 * once

    def test_rounds_for_loads_exact_integer_ceiling(self):
        """Round charges must use exact integer ceiling division, not np.ceil."""
        partition = RandomVertexPartition(4, 2)
        network = KMachineNetwork(partition, bandwidth_messages=3)
        for heaviest, expected in ((1, 1), (3, 1), (4, 2), (6, 2), (7, 3)):
            loads = np.array([[0, heaviest], [0, 0]], dtype=np.int64)
            assert network.rounds_for_loads(loads) == expected

    def test_rounds_for_loads_exact_beyond_float_precision(self):
        # 2^53 + 1 is the first integer a float64 quotient cannot represent:
        # np.ceil((2**53 + 1) / 1.0) charged one round too few.
        heaviest = 2**53 + 1
        partition = RandomVertexPartition(4, 2)
        unit = KMachineNetwork(partition, bandwidth_messages=1)
        loads = np.array([[0, heaviest], [0, 0]], dtype=np.int64)
        assert unit.rounds_for_loads(loads) == heaviest
        wide = KMachineNetwork(partition, bandwidth_messages=3)
        assert wide.rounds_for_loads(loads) == -(-heaviest // 3)

    def test_all_local_messages_cost_zero_rounds(self):
        partition = RandomVertexPartition(4, 1, method="hash")
        network = KMachineNetwork(partition)
        rounds = network.route_congest_round(np.array([0, 1]), np.array([1, 0]))
        assert rounds == 0
        assert network.cost().local_messages == 2

    def test_validation(self):
        partition = RandomVertexPartition(4, 2)
        with pytest.raises(MachineError):
            KMachineNetwork(partition, bandwidth_messages=0)
        network = KMachineNetwork(partition)
        with pytest.raises(MachineError):
            network.link_loads(np.array([0, 1]), np.array([0]))
        with pytest.raises(MachineError):
            network.route_congest_round(np.array([0]), np.array([1]), repeat=-1)


class TestConversionTheorem:
    def test_formula(self):
        value = conversion_theorem_rounds(messages=1000, rounds=10, max_degree=5, num_machines=10)
        assert value == pytest.approx(1000 / 100 + 5 * 10 / 10)

    def test_polylog_factor(self):
        base = conversion_theorem_rounds(100, 1, 1, 2)
        with_log = conversion_theorem_rounds(100, 1, 1, 2, include_polylog=True, n=1024)
        assert with_log > base

    def test_dominant_term(self):
        assert dominant_term(messages=10**6, rounds=10, max_degree=10, num_machines=10) == "messages"
        assert dominant_term(messages=100, rounds=1000, max_degree=100, num_machines=10) == "degree"

    def test_closed_form_bound_decreases_with_k(self):
        bounds = [cdrw_kmachine_round_bound(1024, 2, 0.05, 0.001, k) for k in (2, 4, 8)]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_validation(self):
        with pytest.raises(MachineError):
            conversion_theorem_rounds(1, 1, 1, 0)
        with pytest.raises(MachineError):
            conversion_theorem_rounds(-1, 1, 1, 2)
        with pytest.raises(MachineError):
            conversion_theorem_rounds(1, 1, 1, 2, include_polylog=True)
        with pytest.raises(MachineError):
            cdrw_kmachine_round_bound(10, 3, 0.1, 0.1, 2)


class TestKMachineCdrw:
    def test_accuracy_matches_centralized(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        result = detect_communities_kmachine(graph, 4, delta_hint=delta, seed=1, partition_seed=0)
        assert average_f_score(result.detection, truth) > 0.85
        assert result.num_machines == 4

    def test_rounds_decrease_with_more_machines(self, small_ppm):
        graph = small_ppm.graph
        delta = 0.05
        rounds = []
        for k in (2, 4, 8):
            outcome = detect_community_kmachine(
                graph, 3, k, delta_hint=delta, partition_seed=0
            )
            rounds.append(outcome.cost.rounds)
        assert rounds[0] > rounds[1] > rounds[2]

    def test_scaling_between_linear_and_quadratic(self, small_ppm):
        graph = small_ppm.graph
        r2 = detect_community_kmachine(graph, 3, 2, delta_hint=0.05, partition_seed=0).cost.rounds
        r8 = detect_community_kmachine(graph, 3, 8, delta_hint=0.05, partition_seed=0).cost.rounds
        improvement = r2 / r8
        # Going from 2 to 8 machines is a 4x increase: the speedup must be at
        # least linear (4x, up to constant slack) and at most quadratic (16x).
        assert 2.0 < improvement < 20.0

    def test_cost_breakdown_consistent(self, small_ppm):
        outcome = detect_community_kmachine(small_ppm.graph, 0, 4, delta_hint=0.05, partition_seed=1)
        assert outcome.cost.rounds > 0
        assert outcome.cost.congest_rounds_routed > 0
        assert outcome.cost.inter_machine_messages > 0

    def test_invalid_seed_vertex(self, two_cliques_graph):
        with pytest.raises(MachineError):
            detect_community_kmachine(two_cliques_graph, 99, 2)

    def test_network_machine_count_mismatch(self, two_cliques_graph):
        partition = RandomVertexPartition(10, 4)
        network = KMachineNetwork(partition)
        with pytest.raises(MachineError):
            detect_community_kmachine(two_cliques_graph, 0, 2, network=network)
