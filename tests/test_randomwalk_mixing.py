"""Tests for mixing times and local mixing sets (Definitions 1 and 2)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import MixingError
from repro.graphs import Graph, gnp_random_graph
from repro.randomwalk import (
    WalkDistribution,
    best_mixing_subset_of_size,
    distance_to_stationarity,
    graph_mixing_time,
    local_mixing_deficit,
    local_mixing_time,
    mixes_locally,
    mixing_time_from_source,
    spectral_mixing_time_bound,
)


class TestGlobalMixing:
    def test_distance_decreases_with_length(self, small_gnp_graph):
        early = distance_to_stationarity(small_gnp_graph, 0, 1)
        late = distance_to_stationarity(small_gnp_graph, 0, 20)
        assert late < early

    def test_mixing_time_is_logarithmic_for_gnp(self, small_gnp_graph):
        n = small_gnp_graph.num_vertices
        tau = mixing_time_from_source(small_gnp_graph, 0)
        assert 1 <= tau <= 6 * math.ceil(math.log(n))

    def test_complete_graph_mixes_immediately(self):
        complete = Graph(8, [(i, j) for i in range(8) for j in range(i + 1, 8)])
        assert mixing_time_from_source(complete, 0) <= 2

    def test_graph_mixing_time_is_max_over_sources(self, small_gnp_graph):
        sources = [0, 1, 2]
        per_source = [mixing_time_from_source(small_gnp_graph, s) for s in sources]
        assert graph_mixing_time(small_gnp_graph, sources=sources) == max(per_source)

    def test_bipartite_walk_requires_lazy(self):
        # A 4-cycle is bipartite: the plain walk oscillates and never mixes.
        cycle = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        with pytest.raises(MixingError):
            mixing_time_from_source(cycle, 0, max_steps=50)
        assert mixing_time_from_source(cycle, 0, lazy=True) < 50

    def test_invalid_epsilon(self, triangle_graph):
        with pytest.raises(MixingError):
            mixing_time_from_source(triangle_graph, 0, epsilon=0.0)

    def test_edgeless_graph_rejected(self):
        with pytest.raises(MixingError):
            mixing_time_from_source(Graph(3, []), 0)

    def test_spectral_bound_dominates_measured(self, small_gnp_graph):
        measured = mixing_time_from_source(small_gnp_graph, 0)
        bound = spectral_mixing_time_bound(small_gnp_graph)
        assert bound >= measured - 1

    def test_empty_sources_rejected(self, triangle_graph):
        with pytest.raises(MixingError):
            graph_mixing_time(triangle_graph, sources=[])


class TestLocalMixing:
    def test_deficit_zero_at_restricted_stationarity(self, two_cliques_graph):
        # Once the walk has fully mixed, the deficit on the whole vertex set
        # approaches zero.
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(200)
        deficit = local_mixing_deficit(two_cliques_graph, walk.probabilities(), range(10))
        assert deficit < 0.05

    def test_mixes_locally_threshold(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        assert not mixes_locally(two_cliques_graph, walk.probabilities(), range(10))
        walk.run_to(200)
        assert mixes_locally(two_cliques_graph, walk.probabilities(), range(10))

    def test_empty_subset_rejected(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        with pytest.raises(MixingError):
            local_mixing_deficit(two_cliques_graph, walk.probabilities(), [])

    def test_best_subset_recovers_clique(self, two_cliques_graph):
        # After a few steps from a clique vertex the walk is concentrated on
        # that clique: the best 5-vertex subset should be (close to) it.
        walk = WalkDistribution(two_cliques_graph, 1)
        walk.run_to(4)
        subset, deficit = best_mixing_subset_of_size(two_cliques_graph, walk.probabilities(), 5)
        assert len(subset & set(range(5))) >= 4
        assert deficit < 1.0

    def test_best_subset_size_validation(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        with pytest.raises(MixingError):
            best_mixing_subset_of_size(two_cliques_graph, walk.probabilities(), 0)
        with pytest.raises(MixingError):
            best_mixing_subset_of_size(two_cliques_graph, walk.probabilities(), 11)

    def test_local_mixing_time_beta_one_equals_global_scale(self, small_gnp_graph):
        result = local_mixing_time(small_gnp_graph, 0, beta=1.0)
        assert result.time is not None
        assert result.mixing_set is not None
        assert len(result.mixing_set) == small_gnp_graph.num_vertices

    def test_local_mixing_time_smaller_for_larger_beta(self, small_gnp_graph):
        global_scale = local_mixing_time(small_gnp_graph, 0, beta=1.0)
        local_scale = local_mixing_time(small_gnp_graph, 0, beta=8.0)
        assert local_scale.time is not None
        assert local_scale.time <= global_scale.time

    def test_explicit_candidate_sets(self, two_cliques_graph):
        result = local_mixing_time(
            two_cliques_graph, 0, beta=2.0, candidate_sets=[range(5)]
        )
        assert result.time is not None
        assert result.mixing_set == frozenset(range(5))

    def test_candidate_set_must_contain_source(self, two_cliques_graph):
        with pytest.raises(MixingError):
            local_mixing_time(two_cliques_graph, 0, beta=2.0, candidate_sets=[range(5, 10)])

    def test_candidate_set_too_small_rejected(self, two_cliques_graph):
        with pytest.raises(MixingError):
            local_mixing_time(two_cliques_graph, 0, beta=2.0, candidate_sets=[[0, 1]])

    def test_invalid_parameters(self, two_cliques_graph):
        with pytest.raises(MixingError):
            local_mixing_time(two_cliques_graph, 0, beta=0.5)
        with pytest.raises(MixingError):
            local_mixing_time(two_cliques_graph, 99)
