"""Tests for the accuracy metrics (paper's F-score, NMI/ARI, structural quality)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import CommunityResult, DetectionResult
from repro.exceptions import MetricError
from repro.graphs import Partition
from repro.metrics import (
    adjusted_rand_index,
    average_f_score,
    community_f_score,
    community_precision,
    community_quality,
    community_recall,
    contingency_table,
    detected_modularity,
    intra_edge_fraction,
    normalized_mutual_information,
    partition_average_f_score,
    partition_quality,
    purity,
    score_community,
    score_detection,
)


def _detection(communities: list[tuple[int, list[int]]], n: int) -> DetectionResult:
    results = tuple(
        CommunityResult(
            seed=seed,
            community=frozenset(members),
            walk_length=1,
            history=(),
            stop_reason="test",
            delta=0.1,
        )
        for seed, members in communities
    )
    return DetectionResult(num_vertices=n, communities=results)


class TestSeedScores:
    def test_perfect_detection(self):
        truth = Partition.from_labels([0] * 5 + [1] * 5)
        assert community_precision(range(5), truth.members(0)) == 1.0
        assert community_recall(range(5), truth.members(0)) == 1.0
        assert community_f_score(range(5), truth.members(0)) == 1.0

    def test_partial_detection(self):
        truth = set(range(10))
        detected = set(range(5)) | {20, 21}
        assert community_precision(detected, truth) == pytest.approx(5 / 7)
        assert community_recall(detected, truth) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert community_precision([], range(5)) == 0.0
        assert community_recall(range(5), []) == 0.0
        assert community_f_score([], []) == 0.0

    def test_score_community_counts(self):
        truth = Partition.from_labels([0] * 4 + [1] * 4)
        score = score_community(0, [0, 1, 4], truth)
        assert score.intersection_size == 2
        assert score.detected_size == 3
        assert score.truth_size == 4
        assert score.f_score == pytest.approx(2 * (2 / 3) * 0.5 / ((2 / 3) + 0.5))

    def test_score_community_unassigned_seed_raises(self):
        truth = Partition.from_labels([0, -1])
        with pytest.raises(MetricError):
            score_community(1, [1], truth)

    def test_score_detection_and_average(self):
        truth = Partition.from_labels([0] * 5 + [1] * 5)
        detection = _detection([(0, list(range(5))), (9, list(range(5, 10)))], 10)
        scores = score_detection(detection, truth)
        assert len(scores) == 2
        assert average_f_score(detection, truth) == 1.0
        assert average_f_score(scores) == 1.0

    def test_average_f_score_requires_truth_for_detection(self):
        detection = _detection([(0, [0])], 2)
        with pytest.raises(MetricError):
            average_f_score(detection)

    def test_size_mismatch_rejected(self):
        truth = Partition.from_labels([0, 0])
        detection = _detection([(0, [0])], 3)
        with pytest.raises(MetricError):
            score_detection(detection, truth)

    def test_partition_average_f_score(self):
        truth = Partition.from_labels([0] * 5 + [1] * 5)
        perfect = Partition.from_labels([1] * 5 + [0] * 5)  # swapped labels
        assert partition_average_f_score(perfect, truth) == 1.0
        noisy = Partition.from_labels([0] * 4 + [1] * 6)
        assert 0.5 < partition_average_f_score(noisy, truth) < 1.0

    @given(st.lists(st.integers(0, 3), min_size=4, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_partition_f_score_bounded(self, labels):
        truth = Partition.from_labels([i % 2 for i in range(len(labels))])
        predicted = Partition.from_labels(labels)
        value = partition_average_f_score(predicted, truth)
        assert 0.0 <= value <= 1.0

    @staticmethod
    def _set_based_reference(detected: Partition, ground_truth: Partition) -> float:
        """The pre-vectorization implementation, kept verbatim as the oracle."""
        detected_communities = detected.communities()
        if not detected_communities:
            return 0.0
        truth_communities = ground_truth.communities()
        if not truth_communities:
            return 0.0
        total_weight = 0
        total_score = 0.0
        for community in detected_communities:
            best = 0.0
            for truth in truth_communities:
                best = max(best, community_f_score(community, truth))
            total_score += best * len(community)
            total_weight += len(community)
        if total_weight == 0:
            return 0.0
        return total_score / total_weight

    def test_confusion_matrix_path_byte_identical_to_set_loop(self):
        """The bincount rewrite must reproduce the set-based scores exactly."""
        import numpy as np

        rng = np.random.default_rng(42)
        for _ in range(100):
            n = int(rng.integers(1, 80))
            detected = Partition.from_labels(rng.integers(-1, 6, size=n))
            truth = Partition.from_labels(rng.integers(-1, 5, size=n))
            fast = partition_average_f_score(detected, truth)
            slow = self._set_based_reference(detected, truth)
            assert fast == slow  # byte-identical, not approx

    def test_all_unassigned_partitions(self):
        empty = Partition.from_labels([-1, -1, -1])
        truth = Partition.from_labels([0, 0, 1])
        assert partition_average_f_score(empty, truth) == 0.0
        assert partition_average_f_score(truth, empty) == 0.0

    def test_detected_community_disjoint_from_truth_scores_zero(self):
        # The detected community's members are all unassigned in the truth:
        # every pairwise intersection is empty, so its best F-score is 0.
        detected = Partition.from_labels([0, 0, 1, 1])
        truth = Partition.from_labels([-1, -1, 0, 0])
        value = partition_average_f_score(detected, truth)
        assert value == pytest.approx(0.5)

    @pytest.mark.perf
    def test_partition_f_score_perf_smoke(self):
        """O(n + D·T) rewrite: 200k vertices, 100×100 communities, well under 1s.

        The former per-pair set loop took tens of seconds at this size; a
        generous ceiling fails loudly if it sneaks back in.
        """
        import time

        import numpy as np

        rng = np.random.default_rng(0)
        n = 200_000
        detected = Partition.from_labels(rng.integers(0, 100, size=n))
        truth = Partition.from_labels(rng.integers(0, 100, size=n))
        start = time.perf_counter()
        value = partition_average_f_score(detected, truth)
        elapsed = time.perf_counter() - start
        assert 0.0 <= value <= 1.0
        assert elapsed < 1.0, (
            f"partition_average_f_score took {elapsed:.2f}s on 200k vertices "
            f"— did the per-pair set loop sneak back in?"
        )


class TestClusteringMetrics:
    def test_identical_partitions_max_scores(self):
        a = Partition.from_labels([0, 0, 1, 1, 2, 2])
        b = Partition.from_labels([5, 5, 9, 9, 7, 7])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)
        assert purity(a, b) == pytest.approx(1.0)

    def test_single_cluster_vs_split(self):
        whole = Partition.single_community(8)
        split = Partition.from_labels([0] * 4 + [1] * 4)
        assert normalized_mutual_information(whole, split) == pytest.approx(0.0, abs=1e-9)
        assert adjusted_rand_index(whole, split) == pytest.approx(0.0, abs=1e-9)

    def test_contingency_table_counts(self):
        a = Partition.from_labels([0, 0, 1, 1])
        b = Partition.from_labels([0, 1, 0, 1])
        table = contingency_table(a, b)
        assert table.sum() == 4
        assert table.shape == (2, 2)
        assert (table == 1).all()

    def test_size_mismatch_rejected(self):
        with pytest.raises(MetricError):
            normalized_mutual_information(
                Partition.from_labels([0, 1]), Partition.from_labels([0, 1, 1])
            )

    def test_no_common_assignment_rejected(self):
        a = Partition.from_labels([0, -1])
        b = Partition.from_labels([-1, 0])
        with pytest.raises(MetricError):
            adjusted_rand_index(a, b)

    @given(st.lists(st.integers(0, 4), min_size=4, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_metric_ranges(self, labels):
        predicted = Partition.from_labels(labels)
        truth = Partition.from_labels([i % 3 for i in range(len(labels))])
        assert 0.0 <= normalized_mutual_information(predicted, truth) <= 1.0
        assert -1.0 <= adjusted_rand_index(predicted, truth) <= 1.0
        assert 0.0 <= purity(predicted, truth) <= 1.0


class TestGraphQuality:
    def test_clique_quality(self, two_cliques_graph):
        quality = community_quality(two_cliques_graph, range(5))
        assert quality.size == 5
        assert quality.internal_edges == 10
        assert quality.cut_edges == 1
        assert quality.internal_density == 1.0
        assert quality.conductance == pytest.approx(1 / 21)

    def test_empty_community_rejected(self, two_cliques_graph):
        with pytest.raises(MetricError):
            community_quality(two_cliques_graph, [])

    def test_partition_quality_and_modularity(self, two_cliques_graph):
        partition = Partition.from_labels([0] * 5 + [1] * 5)
        qualities = partition_quality(two_cliques_graph, partition)
        assert len(qualities) == 2
        assert detected_modularity(two_cliques_graph, partition) > 0.3
        assert intra_edge_fraction(two_cliques_graph, partition) == pytest.approx(20 / 21)
