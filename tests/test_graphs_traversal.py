"""Tests for BFS, balls, components and diameter."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    ball,
    ball_sizes,
    bfs_tree,
    connected_components,
    diameter,
    eccentricity,
    is_connected,
    shortest_path_length,
)


class TestBfs:
    def test_distances_on_path(self, path_graph):
        result = bfs_tree(path_graph, 0)
        assert list(result.distances) == [0, 1, 2, 3, 4]
        assert result.depth() == 4

    def test_parents_form_tree(self, path_graph):
        result = bfs_tree(path_graph, 2)
        assert result.parents[2] == -1
        assert result.parents[1] == 2
        assert result.parents[0] == 1

    def test_max_depth_caps_search(self, path_graph):
        result = bfs_tree(path_graph, 0, max_depth=2)
        assert list(result.reached()) == [0, 1, 2]
        assert result.depth() == 2

    def test_children_and_order(self, path_graph):
        result = bfs_tree(path_graph, 0)
        children = result.children()
        assert children[0] == [1]
        order = result.subtree_order()
        assert order[0] == 0
        assert sorted(order) == list(range(5))

    def test_unreachable_vertices(self):
        graph = Graph(4, [(0, 1)])
        result = bfs_tree(graph, 0)
        assert result.distances[2] == -1
        assert len(result.reached()) == 2

    def test_invalid_root(self, path_graph):
        with pytest.raises(GraphError):
            bfs_tree(path_graph, 10)

    def test_negative_depth_rejected(self, path_graph):
        with pytest.raises(GraphError):
            bfs_tree(path_graph, 0, max_depth=-1)


class TestBalls:
    def test_ball_growth_on_path(self, path_graph):
        assert ball(path_graph, 2, 0) == frozenset({2})
        assert ball(path_graph, 2, 1) == frozenset({1, 2, 3})
        assert ball(path_graph, 2, 10) == frozenset(range(5))

    def test_ball_sizes_cumulative(self, path_graph):
        assert ball_sizes(path_graph, 0, 3) == [1, 2, 3, 4]

    def test_ball_negative_radius_rejected(self, path_graph):
        with pytest.raises(GraphError):
            ball(path_graph, 0, -1)


class TestComponentsAndDiameter:
    def test_connected_components_sizes(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)])
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2, 1]

    def test_is_connected(self, two_cliques_graph):
        assert is_connected(two_cliques_graph)
        assert not is_connected(Graph(3, [(0, 1)]))
        assert is_connected(Graph(0, []))
        assert is_connected(Graph(1, []))

    def test_eccentricity_and_diameter(self, path_graph):
        assert eccentricity(path_graph, 0) == 4
        assert eccentricity(path_graph, 2) == 2
        assert diameter(path_graph) == 4

    def test_diameter_disconnected_raises(self):
        with pytest.raises(GraphError):
            diameter(Graph(3, [(0, 1)]))

    def test_sampled_diameter_is_lower_bound(self, two_cliques_graph):
        exact = diameter(two_cliques_graph)
        sampled = diameter(two_cliques_graph, sample_size=3, seed=0)
        assert sampled <= exact

    def test_shortest_path_length(self, path_graph):
        assert shortest_path_length(path_graph, 0, 4) == 4
        assert shortest_path_length(path_graph, 4, 4) == 0

    def test_shortest_path_unreachable(self):
        graph = Graph(3, [(0, 1)])
        assert shortest_path_length(graph, 0, 2) == -1
