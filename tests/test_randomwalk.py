"""Tests for the random-walk substrate: transitions, distributions, stationarity."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RandomWalkError
from repro.graphs import Graph, gnp_random_graph, random_regular_graph
from repro.randomwalk import (
    WalkDistribution,
    l1_distance,
    lazy_transition_matrix,
    restricted_l1_distance,
    restricted_stationary,
    reverse_transition_matrix,
    sample_walk,
    second_largest_eigenvalue,
    approximate_restricted_stationary,
    stationary_distribution,
    step_distribution,
    total_variation_distance,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_are_stochastic(self, two_cliques_graph):
        matrix = transition_matrix(two_cliques_graph)
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(row_sums, 1.0)

    def test_entries_are_inverse_degree(self, path_graph):
        matrix = transition_matrix(path_graph).toarray()
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 0] == pytest.approx(0.5)
        assert matrix[1, 2] == pytest.approx(0.5)

    def test_isolated_vertex_row_is_zero(self):
        graph = Graph(3, [(0, 1)])
        matrix = transition_matrix(graph).toarray()
        assert np.allclose(matrix[2], 0.0)

    def test_lazy_matrix_diagonal(self, triangle_graph):
        lazy = lazy_transition_matrix(triangle_graph, laziness=0.5).toarray()
        assert np.allclose(np.diag(lazy), 0.5)
        assert np.allclose(lazy.sum(axis=1), 1.0)

    def test_lazy_invalid_laziness(self, triangle_graph):
        with pytest.raises(RandomWalkError):
            lazy_transition_matrix(triangle_graph, laziness=1.0)

    def test_reverse_transition_preserves_mass(self, two_cliques_graph):
        operator = reverse_transition_matrix(two_cliques_graph)
        distribution = np.zeros(10)
        distribution[0] = 1.0
        for _ in range(5):
            distribution = operator @ distribution
            assert distribution.sum() == pytest.approx(1.0)

    def test_step_distribution_shape_check(self, triangle_graph):
        with pytest.raises(RandomWalkError):
            step_distribution(triangle_graph, np.zeros(5))


class TestSecondEigenvalue:
    def test_regular_graph_bound(self):
        # Equation 2 of the paper: λ₂ ≈ 1/sqrt(d) for random d-regular graphs.
        graph = random_regular_graph(200, 16, seed=3)
        lam = second_largest_eigenvalue(graph)
        assert lam < 3.0 / math.sqrt(16)
        assert lam > 0.0

    def test_complete_graph_small_eigenvalue(self):
        complete = Graph(6, [(i, j) for i in range(6) for j in range(i + 1, 6)])
        assert second_largest_eigenvalue(complete) == pytest.approx(1.0 / 5.0, abs=1e-8)

    def test_isolated_vertex_rejected(self):
        with pytest.raises(RandomWalkError):
            second_largest_eigenvalue(Graph(3, [(0, 1)]))


class TestStationary:
    def test_stationary_is_degree_over_volume(self, two_cliques_graph):
        pi = stationary_distribution(two_cliques_graph)
        degrees = two_cliques_graph.degrees()
        assert np.allclose(pi, degrees / two_cliques_graph.volume)
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_fixed_point(self, two_cliques_graph):
        pi = stationary_distribution(two_cliques_graph)
        advanced = reverse_transition_matrix(two_cliques_graph) @ pi
        assert np.allclose(advanced, pi)

    def test_stationary_requires_edges(self):
        with pytest.raises(RandomWalkError):
            stationary_distribution(Graph(3, []))

    def test_restricted_stationary_normalised_on_subset(self, two_cliques_graph):
        pi_s = restricted_stationary(two_cliques_graph, range(5))
        assert pi_s[:5].sum() == pytest.approx(1.0)
        assert np.allclose(pi_s[5:], 0.0)

    def test_restricted_stationary_empty_rejected(self, two_cliques_graph):
        with pytest.raises(RandomWalkError):
            restricted_stationary(two_cliques_graph, [])

    def test_approximate_restricted_stationary_uses_average_volume(self, two_cliques_graph):
        values = approximate_restricted_stationary(two_cliques_graph, 5)
        expected = two_cliques_graph.degrees() / (two_cliques_graph.volume / 10 * 5)
        assert np.allclose(values, expected)

    def test_distances(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        assert l1_distance(p, q) == pytest.approx(1.0)
        assert total_variation_distance(p, q) == pytest.approx(0.5)

    def test_distance_shape_mismatch(self):
        with pytest.raises(RandomWalkError):
            l1_distance(np.zeros(2), np.zeros(3))

    def test_restricted_l1_distance(self):
        p = np.array([0.2, 0.3, 0.5])
        target = np.array([0.4, 0.3, 0.3])
        assert restricted_l1_distance(p, target, [0, 2]) == pytest.approx(0.4)
        assert restricted_l1_distance(p, target, []) == 0.0


class TestWalkDistribution:
    def test_initial_state(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        assert walk.probability(0) == 1.0
        assert walk.steps == 0
        assert list(walk.support()) == [0]

    def test_step_spreads_to_neighbors(self, path_graph):
        walk = WalkDistribution(path_graph, 0)
        walk.step()
        assert walk.probability(1) == pytest.approx(1.0)
        walk.step()
        assert walk.probability(0) == pytest.approx(0.5)
        assert walk.probability(2) == pytest.approx(0.5)

    def test_run_to_and_restart(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(4)
        assert walk.steps == 4
        with pytest.raises(RandomWalkError):
            walk.run_to(2)
        walk.restart()
        assert walk.steps == 0
        assert walk.probability(0) == 1.0

    def test_converges_to_stationary(self, small_gnp_graph):
        walk = WalkDistribution(small_gnp_graph, 0)
        walk.run_to(60)
        pi = stationary_distribution(small_gnp_graph)
        assert l1_distance(walk.probabilities(), pi) < 0.01

    def test_matches_matrix_power(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 3)
        walk.run_to(4)
        operator = reverse_transition_matrix(two_cliques_graph).toarray()
        start = np.zeros(10)
        start[3] = 1.0
        expected = np.linalg.matrix_power(operator, 4) @ start
        assert np.allclose(walk.probabilities(), expected)

    def test_restricted_and_mass(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(3)
        restricted = walk.restricted(range(5))
        assert np.allclose(restricted[5:], 0.0)
        assert walk.mass_in(range(10)) == pytest.approx(1.0)
        assert walk.mass_in(range(5)) == pytest.approx(restricted.sum())

    def test_invalid_source(self, triangle_graph):
        with pytest.raises(RandomWalkError):
            WalkDistribution(triangle_graph, 9)

    @given(steps=st.integers(0, 12))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_property(self, two_cliques_graph, steps):
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(steps)
        assert walk.probabilities().sum() == pytest.approx(1.0)
        assert (walk.probabilities() >= 0).all()


class TestSampleWalk:
    def test_length_and_adjacency(self, two_cliques_graph):
        trajectory = sample_walk(two_cliques_graph, 0, 20, seed=1)
        assert len(trajectory) == 21
        for u, v in zip(trajectory, trajectory[1:]):
            assert two_cliques_graph.has_edge(u, v)

    def test_stops_at_isolated_vertex(self):
        graph = Graph(3, [(0, 1)])
        trajectory = sample_walk(graph, 2, 5, seed=1)
        assert trajectory == [2]

    def test_invalid_arguments(self, triangle_graph):
        with pytest.raises(RandomWalkError):
            sample_walk(triangle_graph, 7, 3)
        with pytest.raises(RandomWalkError):
            sample_walk(triangle_graph, 0, -1)
