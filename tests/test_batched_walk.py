"""BatchedWalkDistribution vs WalkDistribution: step-for-step equivalence."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import RandomWalkError
from repro.graphs import Graph, planted_partition_graph
from repro.randomwalk import BatchedWalkDistribution, WalkDistribution


@pytest.fixture(scope="module")
def ppm_graph():
    n = 256
    return planted_partition_graph(n, 2, 3 * math.log(n) ** 2 / n, 1.0 / n, seed=7).graph


class TestEquivalence:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_matches_scalar_walks_step_for_step(self, ppm_graph, lazy):
        seeds = [0, 17, 130, 255, 17]  # duplicates allowed
        batched = BatchedWalkDistribution(ppm_graph, seeds, lazy=lazy)
        scalars = [WalkDistribution(ppm_graph, s, lazy=lazy) for s in seeds]
        for _ in range(12):
            batched.step()
            for walk in scalars:
                walk.step()
            for j, walk in enumerate(scalars):
                # The SpMM columns are bit-identical to scalar mat-vecs (well
                # inside the 1e-12 tolerance the equivalence spec requires).
                assert np.array_equal(batched.column(j), walk.probabilities())

    def test_initial_state_is_indicator(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [2, 9])
        matrix = batched.probabilities()
        assert matrix.shape == (10, 2)
        assert matrix[2, 0] == 1.0 and matrix[9, 1] == 1.0
        assert matrix.sum() == 2.0
        assert batched.steps == 0

    def test_mass_in_matches_scalar(self, ppm_graph):
        seeds = [3, 200]
        batched = BatchedWalkDistribution(ppm_graph, seeds)
        scalars = [WalkDistribution(ppm_graph, s) for s in seeds]
        batched.step(5)
        for walk in scalars:
            walk.step(5)
        subset = list(range(0, 128))
        masses = batched.mass_in(subset)
        for j, walk in enumerate(scalars):
            assert masses[j] == pytest.approx(walk.mass_in(subset), abs=0.0)

    def test_run_to_and_restart(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [0, 5])
        batched.run_to(4)
        assert batched.steps == 4
        batched.restart()
        assert batched.steps == 0
        assert batched.probabilities()[0, 0] == 1.0


class TestRetain:
    def test_retain_narrows_batch(self, ppm_graph):
        seeds = [1, 2, 3, 4]
        batched = BatchedWalkDistribution(ppm_graph, seeds)
        batched.step(3)
        expected = [WalkDistribution(ppm_graph, s) for s in seeds]
        for walk in expected:
            walk.step(3)
        batched.retain([0, 2])
        assert batched.sources == (1, 3)
        assert batched.num_walks == 2
        batched.step()
        expected[0].step()
        expected[2].step()
        assert np.array_equal(batched.column(0), expected[0].probabilities())
        assert np.array_equal(batched.column(1), expected[2].probabilities())

    def test_retain_rejects_bad_indices(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [0, 5])
        with pytest.raises(RandomWalkError):
            batched.retain([])
        with pytest.raises(RandomWalkError):
            batched.retain([5])


class TestValidation:
    def test_empty_sources_rejected(self, two_cliques_graph):
        with pytest.raises(RandomWalkError):
            BatchedWalkDistribution(two_cliques_graph, [])

    def test_out_of_range_source_rejected(self, two_cliques_graph):
        with pytest.raises(RandomWalkError):
            BatchedWalkDistribution(two_cliques_graph, [0, 99])

    def test_negative_step_rejected(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [0])
        with pytest.raises(RandomWalkError):
            batched.step(-1)

    def test_run_to_cannot_rewind(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [0])
        batched.step(3)
        with pytest.raises(RandomWalkError):
            batched.run_to(1)

    def test_column_out_of_range(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [0])
        with pytest.raises(RandomWalkError):
            batched.column(1)

    def test_views_read_only(self, two_cliques_graph):
        batched = BatchedWalkDistribution(two_cliques_graph, [0, 1])
        with pytest.raises(ValueError):
            batched.probabilities()[0, 0] = 2.0
        with pytest.raises(ValueError):
            batched.column(0)[0] = 2.0
