"""Tests for the resident :class:`repro.session.DetectionSession`.

The contract under test (see ``src/repro/session.py``): a session call must
produce a computed payload — detections, cost totals, artifacts — that is
**bit-identical** to the session-free facade for the same knobs, at every
worker count on both executors.  Caching the broadcast, the worker pool,
the walk operator, the mixing-set search and the resolved δ may only move
the wall clock and the report metadata.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.api import RunConfig, RunReport, detect
from repro.exceptions import BackendError
from repro.graphs import Graph, planted_partition_graph, ppm_expected_conductance
from repro.session import DetectionSession

WORKER_COUNTS = (1, 2, 4)
EXECUTORS = ("thread", "process")

#: The parts of a serialized report the run *computes* — required identical
#: between session and one-shot runs.  The remaining keys (``config``,
#: ``timings``, ``metadata``) describe the run itself and naturally differ
#: (the session adds its reuse counters to ``metadata``).
PAYLOAD_KEYS = ("backend", "detection", "phase_costs", "total_cost", "artifacts", "params")


def payload(report) -> dict:
    data = report.to_dict()
    return {key: data[key] for key in PAYLOAD_KEYS}


@pytest.fixture(scope="module")
def ppm():
    """A small PPM instance plus its analytic conductance hint."""
    n = 256
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    instance = planted_partition_graph(n, 2, p, q, seed=7)
    delta = ppm_expected_conductance(n, 2, p, q)
    return instance, delta


# ----------------------------------------------------------------------
# Bit-identity against the one-shot facade
# ----------------------------------------------------------------------
class TestSessionIdentity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batched_payload_identical(self, ppm, executor, workers):
        instance, delta = ppm
        config = RunConfig(
            seeds=(0, 40, 130, 200),
            batch_size=2,
            workers=workers,
            executor=executor,
            capture_distributions=True,
        )
        one_shot = detect(instance.graph, "batched", config=config, delta_hint=delta)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            resident = s.detect()
        assert payload(resident) == payload(one_shot)
        assert resident.to_dict()["detection"] == one_shot.to_dict()["detection"]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_batched_pool_mode_identical(self, ppm, executor):
        # No explicit seeds: the facade draws them from the pool loop's RNG.
        # The session must reproduce the exact draw sequence.
        instance, delta = ppm
        config = RunConfig(
            seed=11, max_seeds=6, batch_size=3, workers=2, executor=executor
        )
        one_shot = detect(instance.graph, "batched", config=config, delta_hint=delta)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            resident = s.detect()
        assert payload(resident) == payload(one_shot)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_payload_identical(self, ppm, executor, workers):
        instance, delta = ppm
        config = RunConfig(
            seed=3, num_communities=2, workers=workers, executor=executor
        )
        one_shot = detect(instance.graph, "parallel", config=config, delta_hint=delta)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            resident = s.detect(backend="parallel")
        assert payload(resident) == payload(one_shot)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_repeated_calls_stay_identical(self, ppm, executor):
        # Cache hits on later calls must not perturb a single float.
        instance, delta = ppm
        config = RunConfig(workers=2, executor=executor, batch_size=2)
        requests = [(0, 130), (5, 77), (0, 130)]
        one_shot = [
            detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=request),
                delta_hint=delta,
            )
            for request in requests
        ]
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            resident = [s.detect(seeds=request) for request in requests]
        for fresh, cached in zip(one_shot, resident):
            assert payload(cached) == payload(fresh)

    def test_serialized_roundtrip(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as s:
            report = s.detect(seeds=(0, 130), batch_size=2)
        assert RunReport.from_json(report.to_json()) == report

    def test_edgeless_graph_both_executors(self):
        graph = Graph(6, [])
        for executor in EXECUTORS:
            config = RunConfig(seeds=(0, 3), executor=executor)
            one_shot = detect(graph, "batched", config=config)
            with DetectionSession(graph, config=config) as s:
                resident = s.detect()
            assert payload(resident) == payload(one_shot)


# ----------------------------------------------------------------------
# Residency: one broadcast, persistent pool, cache hits
# ----------------------------------------------------------------------
class TestSessionResidency:
    def test_process_broadcasts_exactly_once(self, ppm):
        instance, delta = ppm
        config = RunConfig(workers=2, executor="process", batch_size=2)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            first = s.detect(seeds=(0, 130))
            second = s.detect(seeds=(5, 200))
            third = s.detect(seeds=(9, 90))
            assert s.broadcasts == 1
        assert first.metadata["session_broadcasts"] == 1
        assert third.metadata["session_broadcasts"] == 1
        assert first.metadata["session_pool_reused"] is False
        assert second.metadata["session_pool_reused"] is True
        assert third.metadata["session_pool_reused"] is True
        assert [r.metadata["session_calls"] for r in (first, second, third)] == [1, 2, 3]

    def test_thread_tier_never_broadcasts(self, ppm):
        instance, delta = ppm
        config = RunConfig(executor="thread")
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            first = s.detect(seeds=(0, 130), batch_size=2)
            second = s.detect(seeds=(5, 200), batch_size=2)
            assert s.broadcasts == 0
        assert first.metadata["session_operator_reused"] is False
        assert second.metadata["session_operator_reused"] is True
        assert second.metadata["session_search_reused"] is True
        assert second.metadata["session_delta_reused"] is True

    def test_worker_change_rebuilds_executor_not_broadcast(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as s:
            one = s.detect(seeds=(0,), executor="process", workers=1)
            two = s.detect(seeds=(0,), executor="process", workers=2)
            again = s.detect(seeds=(0,), executor="process", workers=2)
            assert s.broadcasts == 1
        assert one.detection == two.detection == again.detection
        assert two.metadata["session_pool_reused"] is False  # executor rebuilt
        assert again.metadata["session_pool_reused"] is True

    def test_delta_cache_per_hint(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as s:
            first = s.detect(seeds=(0,))
            second = s.detect(seeds=(0,))
            other_hint = s.detect(seeds=(0,), delta_hint=delta * 0.5)
        assert first.metadata["session_delta_reused"] is False
        assert second.metadata["session_delta_reused"] is True
        assert other_hint.metadata["session_delta_reused"] is False

    def test_stationary_distribution_cached(self, ppm):
        instance, _ = ppm
        with DetectionSession(instance.graph) as s:
            first = s.stationary_distribution
            assert s.stationary_distribution is first
            degrees = instance.graph.csr_arrays()[2]
            expected = degrees / degrees.sum()
            np.testing.assert_allclose(first, expected)


# ----------------------------------------------------------------------
# Independence between sessions
# ----------------------------------------------------------------------
class TestSessionIndependence:
    def test_two_sessions_do_not_share_state(self, ppm, two_cliques_graph):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as a:
            with DetectionSession(two_cliques_graph) as b:
                report_a = a.detect(seeds=(0,))
                report_b = b.detect(seeds=(0,))
                assert a._operators is not b._operators
                assert report_a.metadata["num_vertices"] == instance.graph.num_vertices
                assert (
                    report_b.metadata["num_vertices"]
                    == two_cliques_graph.num_vertices
                )
                # b's answer matches a fresh facade run on its own graph.
                fresh_b = detect(two_cliques_graph, "batched", config=RunConfig(seeds=(0,)))
                assert payload(report_b) == payload(fresh_b)

    def test_closing_one_session_leaves_the_other_usable(self, ppm, two_cliques_graph):
        instance, delta = ppm
        a = DetectionSession(instance.graph, delta_hint=delta)
        b = DetectionSession(two_cliques_graph)
        try:
            a.detect(seeds=(0,), executor="process", workers=1)
            a.close()
            report = b.detect(seeds=(0,))
            assert report.detection.num_communities == 1
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# Facade guards
# ----------------------------------------------------------------------
class TestSessionGuards:
    def test_constructor_rejects_non_graph(self):
        with pytest.raises(BackendError, match="needs a Graph"):
            DetectionSession("not a graph")

    def test_facade_rejects_foreign_graph(self, ppm, two_cliques_graph):
        instance, _ = ppm
        with DetectionSession(instance.graph) as s:
            with pytest.raises(BackendError, match="session's own graph"):
                detect(two_cliques_graph, "batched", session=s)

    def test_facade_rejects_equal_but_distinct_graph(self, two_cliques_graph):
        clone = Graph(
            two_cliques_graph.num_vertices, list(two_cliques_graph.edges())
        )
        assert clone == two_cliques_graph
        with DetectionSession(two_cliques_graph) as s:
            with pytest.raises(BackendError, match="session's own graph"):
                detect(clone, "batched", session=s)

    def test_facade_rejects_sessionless_backend(self, ppm):
        instance, _ = ppm
        with DetectionSession(instance.graph) as s:
            with pytest.raises(BackendError, match="does not support resident sessions"):
                s.detect(backend="scalar")

    def test_closed_session_rejects_calls(self, ppm):
        instance, _ = ppm
        s = DetectionSession(instance.graph)
        s.close()
        with pytest.raises(BackendError, match="closed"):
            s.detect(seeds=(0,))
        with pytest.raises(BackendError, match="closed"):
            detect(instance.graph, "batched", session=s)

    def test_close_is_idempotent(self, ppm):
        instance, _ = ppm
        s = DetectionSession(instance.graph)
        s.detect(seeds=(0,), executor="process", workers=1)
        s.close()
        s.close()
        assert s.closed


# ----------------------------------------------------------------------
# Request coalescing
# ----------------------------------------------------------------------
class TestDetectBatchCoalescing:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_coalesced_equals_per_seed_calls(self, ppm, executor):
        instance, delta = ppm
        seeds = (0, 40, 130, 200)
        config = RunConfig(workers=2, executor=executor)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            coalesced = s.detect_batch(seeds)
            singles = [s.detect(seeds=(seed,)) for seed in seeds]
        assert coalesced.detection.num_communities == len(seeds)
        for one, community in zip(singles, coalesced.detection.communities):
            assert one.detection.communities[0] == community

    def test_batch_size_defaults_to_request_width(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as s:
            report = s.detect_batch((0, 40, 130))
        assert report.config.batch_size == 3
        # An explicit batch_size override wins over the default.
        with DetectionSession(instance.graph, delta_hint=delta) as s:
            report = s.detect_batch((0, 40, 130), batch_size=1)
        assert report.config.batch_size == 1


# ----------------------------------------------------------------------
# Session defaults
# ----------------------------------------------------------------------
class TestSessionDefaults:
    def test_session_config_and_hint_are_defaults(self, ppm):
        instance, delta = ppm
        config = RunConfig(seeds=(0, 130), batch_size=2)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            defaulted = s.detect()
        one_shot = detect(instance.graph, "batched", config=config, delta_hint=delta)
        assert payload(defaulted) == payload(one_shot)

    def test_per_call_config_overrides_session_default(self, ppm):
        instance, delta = ppm
        session_config = RunConfig(seeds=(0,))
        call_config = RunConfig(seeds=(130,))
        with DetectionSession(
            instance.graph, config=session_config, delta_hint=delta
        ) as s:
            report = s.detect(config=call_config)
        assert report.detection.communities[0].seed == 130

    def test_keyword_overrides_apply_on_top(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as s:
            report = s.detect(seeds=(0, 130), batch_size=1)
        assert report.config.batch_size == 1
        assert report.config.seeds == (0, 130)


# ----------------------------------------------------------------------
# capture_history fast path (satellite S1)
# ----------------------------------------------------------------------
class TestCaptureHistoryFastPath:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_histories_skipped_results_unchanged(self, ppm, executor):
        instance, delta = ppm
        base = RunConfig(seeds=(0, 130), batch_size=2, workers=2, executor=executor)
        full = detect(
            instance.graph, "batched", config=base, delta_hint=delta
        )
        slim = detect(
            instance.graph,
            "batched",
            config=base.with_overrides(capture_history=False),
            delta_hint=delta,
        )
        for with_history, without in zip(
            full.detection.communities, slim.detection.communities
        ):
            assert without.history == ()
            assert len(with_history.history) > 0
            assert without.community == with_history.community
            assert without.walk_length == with_history.walk_length
            assert without.stop_reason == with_history.stop_reason
            assert without.delta == with_history.delta

    def test_session_honors_capture_history_default(self, ppm):
        instance, delta = ppm
        config = RunConfig(seeds=(0, 130), batch_size=2, capture_history=False)
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as s:
            report = s.detect()
        assert all(c.history == () for c in report.detection.communities)

    def test_worker_payload_shrinks_without_histories(self, ppm):
        # The point of threading the flag into the shards: workers never
        # build the histories, so the pickled results crossing the process
        # boundary get strictly smaller.
        instance, delta = ppm
        base = RunConfig(
            seeds=(0, 40, 130, 200), batch_size=2, workers=2, executor="process"
        )
        full = detect(instance.graph, "batched", config=base, delta_hint=delta)
        slim = detect(
            instance.graph,
            "batched",
            config=base.with_overrides(capture_history=False),
            delta_hint=delta,
        )
        assert len(pickle.dumps(slim.detection)) < len(pickle.dumps(full.detection))
        for with_history, without in zip(
            full.detection.communities, slim.detection.communities
        ):
            assert without.community == with_history.community


# ----------------------------------------------------------------------
# One-call-at-a-time contract (PR 9)
# ----------------------------------------------------------------------
class TestSessionBusyGuard:
    def test_concurrent_call_raises_session_busy(self, ppm, monkeypatch):
        # Deterministic race: thread A's call is held inside the guarded
        # region (its δ resolution blocks on an event), so the main
        # thread's second call must hit the busy guard — and releasing A
        # must still produce the exact one-shot payload.
        import threading

        from repro.exceptions import SessionBusyError

        instance, delta = ppm
        config = RunConfig(workers=1, executor="thread")
        session = DetectionSession(instance.graph, config=config, delta_hint=delta)
        entered = threading.Event()
        release = threading.Event()
        original = session._resolve_delta

        def slow_resolve(params, hint):
            entered.set()
            assert release.wait(timeout=30)
            return original(params, hint)

        monkeypatch.setattr(session, "_resolve_delta", slow_resolve)
        outcome = {}

        def first_caller():
            outcome["report"] = session.detect(seeds=(0,))

        thread = threading.Thread(target=first_caller)
        thread.start()
        try:
            assert entered.wait(timeout=30)
            with pytest.raises(SessionBusyError, match="one call at a time"):
                session.detect(seeds=(40,))
        finally:
            release.set()
            thread.join(timeout=60)
        one_shot = detect(
            instance.graph,
            "batched",
            config=config.with_overrides(seeds=(0,)),
            delta_hint=delta,
        )
        assert payload(outcome["report"]) == payload(one_shot)
        # The guard releases: the session serves again.
        session.detect(seeds=(40,))
        session.close()

    def test_parallel_backend_guarded_too(self, ppm, monkeypatch):
        import threading

        from repro.exceptions import SessionBusyError

        instance, delta = ppm
        session = DetectionSession(
            instance.graph, config=RunConfig(workers=1, executor="thread")
        )
        entered = threading.Event()
        release = threading.Event()
        original = session._resolve_delta

        def slow_resolve(params, hint):
            entered.set()
            assert release.wait(timeout=30)
            return original(params, hint)

        monkeypatch.setattr(session, "_resolve_delta", slow_resolve)
        thread = threading.Thread(
            target=lambda: session.detect(backend="parallel", num_communities=2)
        )
        thread.start()
        try:
            assert entered.wait(timeout=30)
            with pytest.raises(SessionBusyError):
                session.detect(backend="parallel", num_communities=2)
        finally:
            release.set()
            thread.join(timeout=60)
        session.close()


# ----------------------------------------------------------------------
# Lock-discipline regressions (PR 10 — found by the REP2xx analyzer)
# ----------------------------------------------------------------------
class TestConcurrencyRegressions:
    def test_close_waits_out_inflight_call(self, ppm, monkeypatch):
        # close() used to tear the caches down without taking the call
        # slot, racing an in-flight backend run (REP201 on the cache
        # fields).  It must now block until the call finishes — while the
        # cheap state reads (``closed``, ``repr``) stay non-blocking so
        # the facade's pre-dispatch check cannot deadlock behind it.
        import threading

        instance, delta = ppm
        config = RunConfig(workers=1, executor="thread")
        session = DetectionSession(instance.graph, config=config, delta_hint=delta)
        entered = threading.Event()
        release = threading.Event()
        original = session._resolve_delta

        def slow_resolve(params, hint):
            entered.set()
            assert release.wait(timeout=30)
            return original(params, hint)

        monkeypatch.setattr(session, "_resolve_delta", slow_resolve)
        outcome = {}

        def first_caller():
            outcome["report"] = session.detect(seeds=(0,))

        caller = threading.Thread(target=first_caller)
        caller.start()
        try:
            assert entered.wait(timeout=30)
            closer = threading.Thread(target=session.close)
            closer.start()
            closer.join(timeout=0.5)
            # close() is parked behind the in-flight call...
            assert closer.is_alive()
            # ...while the state surface answers immediately.
            assert not session.closed
            assert "open" in repr(session)
            assert session.calls == 1
        finally:
            release.set()
            caller.join(timeout=60)
        closer.join(timeout=60)
        assert not closer.is_alive()
        assert session.closed
        # The call that was in flight when close() arrived still completed.
        assert outcome["report"].detection.communities[0].seed == 0

    def test_observability_never_blocks_behind_a_call(self, ppm, monkeypatch):
        # ``calls`` / ``broadcasts`` live under their own lock: reading
        # them mid-call must return promptly, not wait for the run.
        import threading

        instance, delta = ppm
        config = RunConfig(workers=1, executor="thread")
        session = DetectionSession(instance.graph, config=config, delta_hint=delta)
        entered = threading.Event()
        release = threading.Event()
        original = session._resolve_delta

        def slow_resolve(params, hint):
            entered.set()
            assert release.wait(timeout=30)
            return original(params, hint)

        monkeypatch.setattr(session, "_resolve_delta", slow_resolve)
        thread = threading.Thread(target=lambda: session.detect(seeds=(0,)))
        thread.start()
        try:
            assert entered.wait(timeout=30)
            # The counter was bumped on admission; reading it cannot hang.
            assert session.calls == 1
            assert session.broadcasts == 0
            assert not session.closed
        finally:
            release.set()
            thread.join(timeout=60)
        session.close()


# ----------------------------------------------------------------------
# detect_batch request validation (PR 9)
# ----------------------------------------------------------------------
class TestDetectBatchValidation:
    def test_empty_seed_iterable_rejected(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as session:
            with pytest.raises(BackendError, match="empty seed iterable"):
                session.detect_batch(())
            assert session.calls == 0

    def test_duplicate_seeds_rejected_with_the_duplicates_named(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as session:
            with pytest.raises(
                BackendError, match=r"duplicated seed vertices: \[7, 40\]"
            ):
                session.detect_batch((40, 7, 3, 40, 7, 40))
            assert session.calls == 0

    def test_out_of_range_seed_rejected_before_pool_work(self, ppm):
        from repro.exceptions import AlgorithmError

        instance, delta = ppm
        config = RunConfig(workers=2, executor="process")
        with DetectionSession(instance.graph, config=config, delta_hint=delta) as session:
            with pytest.raises(AlgorithmError, match="is not a vertex of"):
                session.detect_batch((0, instance.graph.num_vertices))
            with pytest.raises(AlgorithmError, match="is not a vertex of"):
                session.detect_batch((-1,))
            # Rejected before any pool work: no broadcast, no call counted.
            assert session.broadcasts == 0
            assert session.calls == 0
