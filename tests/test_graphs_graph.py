"""Tests for the Graph data structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import Graph


class TestConstruction:
    def test_basic_counts(self, triangle_graph):
        assert triangle_graph.num_vertices == 3
        assert triangle_graph.num_edges == 3
        assert triangle_graph.volume == 6

    def test_duplicate_edges_collapsed(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_empty_graph(self):
        graph = Graph(4, [])
        assert graph.num_edges == 0
        assert graph.max_degree() == 0
        assert list(graph.edges()) == []

    def test_from_edge_array(self):
        edges = np.array([[0, 1], [1, 2]])
        graph = Graph.from_edge_array(3, edges)
        assert graph.num_edges == 2

    def test_from_edge_array_bad_shape(self):
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([0, 1, 2]))

    def test_from_edge_array_rejects_nan(self):
        with pytest.raises(GraphError, match="NaN"):
            Graph.from_edge_array(3, np.array([[0.0, 1.0], [float("nan"), 2.0]]))

    def test_from_edge_array_rejects_infinity(self):
        with pytest.raises(GraphError, match="non-finite"):
            Graph.from_edge_array(3, np.array([[0.0, 1.0], [float("inf"), 2.0]]))

    def test_from_edge_array_rejects_fractional_floats(self):
        with pytest.raises(GraphError, match="non-integer"):
            Graph.from_edge_array(3, np.array([[0.0, 1.5]]))

    def test_from_edge_array_accepts_integral_floats(self):
        graph = Graph.from_edge_array(3, np.array([[0.0, 1.0], [1.0, 2.0]]))
        assert graph.num_edges == 2

    def test_from_edge_array_rejects_non_numeric_dtype(self):
        with pytest.raises(GraphError, match="integer dtype"):
            Graph.from_edge_array(3, np.array([["0", "1"]]))

    def test_from_edge_array_accepts_unsigned(self):
        graph = Graph.from_edge_array(3, np.array([[0, 1], [1, 2]], dtype=np.uint32))
        assert graph.num_edges == 2

    def test_constructor_rejects_nan_array(self):
        with pytest.raises(GraphError, match="NaN"):
            Graph(3, np.array([[float("nan"), 1.0]]))

    def test_constructor_rejects_overflowing_ints(self):
        with pytest.raises(GraphError, match="converted to integers"):
            Graph(3, [(0, 2**70)])

    def test_constructor_rejects_empty_rows_of_wrong_width(self):
        with pytest.raises(GraphError, match="shape"):
            Graph(3, np.empty((3, 0)))

    def test_constructor_accepts_zero_row_arrays(self):
        assert Graph(3, np.empty((0,))).num_edges == 0
        assert Graph(3, np.empty((0, 5))).num_edges == 0

    def test_subset_rejects_multidimensional_arrays(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        with pytest.raises(GraphError, match="one-dimensional"):
            graph.cut_size(np.array([[0, 1], [2, 3]]))

    def test_edges_iterates_lazily(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        iterator = graph.edges()
        assert next(iterator) == (0, 1)
        assert list(iterator) == [(1, 2), (2, 3)]

    def test_networkx_round_trip(self, two_cliques_graph):
        nx_graph = two_cliques_graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == two_cliques_graph


class TestFromCsr:
    def test_round_trip_preserves_graph(self, two_cliques_graph):
        indptr, indices, degrees = two_cliques_graph.csr_arrays()
        rebuilt = Graph.from_csr(
            two_cliques_graph.num_vertices, indptr, indices, degrees=degrees
        )
        assert rebuilt == two_cliques_graph
        assert rebuilt.num_edges == two_cliques_graph.num_edges
        assert list(rebuilt.neighbors(0)) == list(two_cliques_graph.neighbors(0))

    def test_round_trip_without_degrees(self, path_graph):
        indptr, indices, _ = path_graph.csr_arrays()
        rebuilt = Graph.from_csr(path_graph.num_vertices, indptr, indices)
        assert rebuilt == path_graph

    def test_empty_graph(self):
        rebuilt = Graph.from_csr(3, np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert rebuilt.num_vertices == 3
        assert rebuilt.num_edges == 0

    def test_adopted_arrays_are_not_copied(self, two_cliques_graph):
        indptr, indices, degrees = (
            np.array(a) for a in two_cliques_graph.csr_arrays()
        )
        rebuilt = Graph.from_csr(
            two_cliques_graph.num_vertices, indptr, indices, degrees=degrees
        )
        # Zero-copy adoption: the rebuilt graph's views alias the inputs.
        assert np.shares_memory(rebuilt.csr_arrays()[1], indices)

    def test_csr_arrays_read_only(self, triangle_graph):
        for array in triangle_graph.csr_arrays():
            with pytest.raises(ValueError):
                array[0] = 99

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 3, 2]), np.array([1, 0]))
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([1, 1, 2]), np.array([1, 0]))
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 1]), np.array([1, 0]))

    def test_validation_rejects_arc_count_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 1, 3]), np.array([1, 0]))

    def test_validation_rejects_out_of_range_indices(self):
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 1, 2]), np.array([1, 5]))

    def test_validation_rejects_self_loops(self):
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 1, 2]), np.array([0, 0]))

    def test_validation_rejects_unsorted_rows(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        indptr, indices, _ = graph.csr_arrays()
        shuffled = np.array(indices)
        shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
        with pytest.raises(GraphError):
            Graph.from_csr(4, indptr, shuffled)

    def test_validation_rejects_bad_degrees(self, path_graph):
        indptr, indices, degrees = path_graph.csr_arrays()
        wrong = np.array(degrees)
        wrong[0] += 1
        wrong[1] -= 1
        with pytest.raises(GraphError):
            Graph.from_csr(path_graph.num_vertices, indptr, indices, degrees=wrong)

    def test_validation_rejects_negative_vertex_count(self):
        with pytest.raises(GraphError):
            Graph.from_csr(-1, np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))

    def test_validation_rejects_odd_arc_count(self):
        # A lone directed arc cannot come from an undirected edge.
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 1, 1]), np.array([1]))

    def test_validation_rejects_duplicate_arcs(self):
        with pytest.raises(GraphError):
            Graph.from_csr(2, np.array([0, 2, 4]), np.array([1, 1, 0, 0]))

    def test_validate_false_skips_structural_checks(self):
        # Reserved for arrays that provably came out of another Graph; the
        # malformed indptr below would raise under validation.
        graph = Graph.from_csr(
            2, np.array([0, 1, 1]), np.array([1]), validate=False
        )
        assert graph.num_vertices == 2

    def test_storage_kind_defaults_to_dense(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        graph = Graph(3, [(0, 1), (1, 2)])
        assert graph.storage_kind == "dense"


class TestAccessors:
    def test_degrees(self, path_graph):
        assert path_graph.degree(0) == 1
        assert path_graph.degree(2) == 2
        assert list(path_graph.degrees()) == [1, 2, 2, 2, 1]

    def test_degree_extremes_and_average(self, path_graph):
        assert path_graph.max_degree() == 2
        assert path_graph.min_degree() == 1
        assert path_graph.average_degree() == pytest.approx(2 * 4 / 5)

    def test_neighbors_sorted_and_readonly(self, triangle_graph):
        neighbors = triangle_graph.neighbors(0)
        assert list(neighbors) == [1, 2]
        with pytest.raises(ValueError):
            neighbors[0] = 5

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 2)
        assert not path_graph.has_edge(0, 0)

    def test_edges_listed_once(self, triangle_graph):
        assert sorted(triangle_graph.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_shape(self, two_cliques_graph):
        array = two_cliques_graph.edge_array()
        assert array.shape == (two_cliques_graph.num_edges, 2)
        assert (array[:, 0] < array[:, 1]).all()

    def test_contains_and_len(self, triangle_graph):
        assert 0 in triangle_graph
        assert 3 not in triangle_graph
        assert "x" not in triangle_graph
        assert len(triangle_graph) == 3

    def test_vertex_out_of_range(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.degree(5)

    def test_adjacency_matrix_symmetric(self, two_cliques_graph):
        adjacency = two_cliques_graph.adjacency_matrix()
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.sum() == two_cliques_graph.volume

    def test_equality(self, triangle_graph):
        clone = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert clone == triangle_graph
        assert Graph(3, [(0, 1)]) != triangle_graph


class TestSubsetOperations:
    def test_subset_volume(self, two_cliques_graph):
        clique = range(5)
        # 4 inside-degree for each of the 5 vertices, plus the bridge endpoint.
        assert two_cliques_graph.subset_volume(clique) == 5 * 4 + 1

    def test_cut_size_bridge(self, two_cliques_graph):
        assert two_cliques_graph.cut_size(range(5)) == 1
        assert two_cliques_graph.cut_size(range(5, 10)) == 1

    def test_cut_size_empty_and_full(self, two_cliques_graph):
        assert two_cliques_graph.cut_size([]) == 0
        assert two_cliques_graph.cut_size(range(10)) == 0

    def test_induced_edge_count(self, two_cliques_graph):
        assert two_cliques_graph.induced_edge_count(range(5)) == 10
        assert two_cliques_graph.induced_edge_count([0, 5]) == 1

    def test_induced_subgraph(self, two_cliques_graph):
        subgraph, mapping = two_cliques_graph.induced_subgraph(list(range(5)))
        assert subgraph.num_vertices == 5
        assert subgraph.num_edges == 10
        assert set(mapping) == set(range(5))

    def test_subset_duplicates_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.subset_volume([0, 0])

    def test_subset_out_of_range_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.cut_size([0, 7])


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(2, 20))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)))
    return n, edges


class TestGraphProperties:
    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_handshake_lemma(self, data):
        n, edges = data
        graph = Graph(n, edges)
        assert graph.degrees().sum() == 2 * graph.num_edges

    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_cut_plus_induced_consistency(self, data):
        n, edges = data
        graph = Graph(n, edges)
        subset = list(range(n // 2))
        complement = list(range(n // 2, n))
        total = (
            graph.induced_edge_count(subset)
            + graph.induced_edge_count(complement)
            + graph.cut_size(subset)
        )
        assert total == graph.num_edges
