"""Exact-equivalence suite: BatchedMixingSetSearch vs the scalar MixingSetSearch.

The batched search must produce **byte-identical** ``LargestMixingSet``
results for every column — same members (including tie-breaks), same deficit
and mass floats, same ``sizes_examined`` — for every schedule and flag
combination.  Dataclass equality covers all of that at once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BatchedMixingSetSearch, CDRWParameters, MixingSetSearch
from repro.exceptions import AlgorithmError
from repro.graphs import Graph
from repro.randomwalk import BatchedWalkDistribution


def random_distribution_matrix(num_vertices: int, width: int, seed: int) -> np.ndarray:
    """Random column-stochastic matrix (each column a probability vector)."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((num_vertices, width))
    return matrix / matrix.sum(axis=0, keepdims=True)


def tie_heavy_distribution_matrix(num_vertices: int, width: int, seed: int) -> np.ndarray:
    """Columns quantized to very few distinct values: maximally tied deviations."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 3, size=(num_vertices, width)).astype(np.float64)
    sums = matrix.sum(axis=0, keepdims=True)
    sums[sums == 0.0] = 1.0
    return matrix / sums


@pytest.fixture(scope="module")
def cycle_graph() -> Graph:
    """A 24-cycle: every vertex has degree 2, so deviation ties are pervasive."""
    n = 24
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def assert_columns_equivalent(graph: Graph, matrix: np.ndarray, **search_kwargs) -> None:
    """Every batched column result must equal the scalar result exactly."""
    scalar = MixingSetSearch(graph, **search_kwargs)
    batched = BatchedMixingSetSearch(graph, **search_kwargs)
    walk_length = 3
    batch_results = batched.largest_mixing_sets(matrix, walk_length)
    assert len(batch_results) == matrix.shape[1]
    for j in range(matrix.shape[1]):
        column = np.ascontiguousarray(matrix[:, j])
        assert batch_results[j] == scalar.largest_mixing_set(column, walk_length)


class TestEquivalenceRandomDistributions:
    @pytest.mark.parametrize("width", [1, 2, 7])
    def test_random_columns_on_ppm(self, small_ppm, width):
        n = small_ppm.graph.num_vertices
        matrix = random_distribution_matrix(n, width, seed=width)
        assert_columns_equivalent(small_ppm.graph, matrix, initial_size=5)

    @pytest.mark.parametrize("width", [1, 4])
    def test_random_columns_on_two_cliques(self, two_cliques_graph, width):
        matrix = random_distribution_matrix(10, width, seed=10 + width)
        assert_columns_equivalent(two_cliques_graph, matrix, initial_size=2)

    def test_linear_schedule(self, two_cliques_graph):
        matrix = random_distribution_matrix(10, 3, seed=1)
        assert_columns_equivalent(
            two_cliques_graph, matrix, initial_size=2, schedule="linear"
        )

    def test_stop_at_first_failure(self, small_ppm):
        n = small_ppm.graph.num_vertices
        matrix = random_distribution_matrix(n, 5, seed=2)
        assert_columns_equivalent(
            small_ppm.graph, matrix, initial_size=5, stop_at_first_failure=True
        )

    @pytest.mark.parametrize("min_mass", [0.0, 0.5, 1.0])
    def test_min_mass_variants(self, small_ppm, min_mass):
        n = small_ppm.graph.num_vertices
        matrix = random_distribution_matrix(n, 3, seed=3)
        assert_columns_equivalent(
            small_ppm.graph, matrix, initial_size=5, min_mass=min_mass
        )


class TestEquivalenceTieHeavyDistributions:
    @pytest.mark.parametrize("width", [1, 6])
    def test_quantized_columns_on_cycle(self, cycle_graph, width):
        matrix = tie_heavy_distribution_matrix(24, width, seed=width)
        assert_columns_equivalent(cycle_graph, matrix, initial_size=2)

    def test_uniform_columns_maximal_ties(self, cycle_graph):
        # All deviations identical within a column: the argpartition tie-break
        # is fully exercised.
        matrix = np.full((24, 4), 1.0 / 24)
        assert_columns_equivalent(cycle_graph, matrix, initial_size=2)
        assert_columns_equivalent(
            cycle_graph, matrix, initial_size=2, schedule="linear"
        )

    def test_quantized_columns_with_first_failure(self, cycle_graph):
        matrix = tie_heavy_distribution_matrix(24, 5, seed=9)
        assert_columns_equivalent(
            cycle_graph, matrix, initial_size=2, stop_at_first_failure=True
        )


class TestEquivalenceWalkDistributions:
    def test_batched_walk_columns_across_steps(self, small_ppm):
        graph = small_ppm.graph
        seeds = [0, 17, 100, 17, 250]
        walk = BatchedWalkDistribution(graph, seeds)
        scalar = MixingSetSearch(graph, initial_size=5)
        batched = BatchedMixingSetSearch(graph, initial_size=5)
        for length in range(1, 6):
            walk.step()
            batch_results = batched.largest_mixing_sets(walk.probabilities(), length)
            for column in range(len(seeds)):
                expected = scalar.largest_mixing_set(walk.column(column), length)
                assert batch_results[column] == expected

    def test_from_parameters_matches_explicit_construction(self, small_ppm):
        graph = small_ppm.graph
        parameters = CDRWParameters(initial_size=4, min_mass=0.2, size_schedule="linear")
        from_params = BatchedMixingSetSearch.from_parameters(graph, parameters, 4)
        explicit = BatchedMixingSetSearch(
            graph,
            initial_size=4,
            mixing_threshold=parameters.mixing_threshold,
            growth_factor=parameters.growth_factor,
            schedule="linear",
            min_mass=0.2,
        )
        assert from_params.candidate_sizes == explicit.candidate_sizes
        matrix = random_distribution_matrix(graph.num_vertices, 2, seed=5)
        assert from_params.largest_mixing_sets(matrix, 1) == explicit.largest_mixing_sets(
            matrix, 1
        )


class TestValidationAndEdgeCases:
    def test_zero_width_matrix(self, two_cliques_graph):
        batched = BatchedMixingSetSearch(two_cliques_graph, initial_size=2)
        assert batched.largest_mixing_sets(np.zeros((10, 0)), 1) == []

    def test_wrong_shape_rejected(self, two_cliques_graph):
        batched = BatchedMixingSetSearch(two_cliques_graph, initial_size=2)
        with pytest.raises(AlgorithmError):
            batched.largest_mixing_sets(np.zeros(10), 1)
        with pytest.raises(AlgorithmError):
            batched.largest_mixing_sets(np.zeros((7, 2)), 1)

    def test_edgeless_graph_rejected(self):
        batched = BatchedMixingSetSearch(Graph(3, []), initial_size=1)
        with pytest.raises(AlgorithmError):
            batched.largest_mixing_sets(np.full((3, 2), 1.0 / 3.0), 1)

    def test_inherits_scalar_interface(self, two_cliques_graph):
        # The batched search is a MixingSetSearch: the scalar entry point and
        # the schedule are shared, so drivers can use either interchangeably.
        batched = BatchedMixingSetSearch(two_cliques_graph, initial_size=2)
        scalar = MixingSetSearch(two_cliques_graph, initial_size=2)
        assert batched.candidate_sizes == scalar.candidate_sizes
        matrix = random_distribution_matrix(10, 1, seed=0)
        column = np.ascontiguousarray(matrix[:, 0])
        assert batched.largest_mixing_set(column, 2) == scalar.largest_mixing_set(column, 2)
