"""Tests for the unified detection engine (:mod:`repro.api`).

Three contracts are pinned here:

* **registry** — unknown backends fail with a message listing every
  registered name, duplicate registration raises, and custom backends can be
  registered/unregistered;
* **behaviour neutrality** — ``detect(graph, backend=b)`` is identical to the
  corresponding legacy entry point for every registered backend, and the
  legacy entry points themselves still produce their *pre-redesign* outputs
  (RNG draw sequences recorded on a fixed PPM before the registry landed);
* **reporting** — ``RunReport`` round-trips through JSON, and the per-phase
  cost reports sum to the backend's total cost.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    BackendOutcome,
    RunConfig,
    RunReport,
    available_backends,
    detect,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.congest import detect_communities_congest
from repro.core import (
    detect_communities,
    detect_communities_batched,
    detect_communities_parallel,
    detect_community,
    detect_community_batch,
)
from repro.core.result import DetectionResult
from repro.exceptions import AlgorithmError, BackendError
from repro.kmachine import detect_communities_kmachine

#: RNG-sequence expectations recorded on the ``small_ppm`` fixture (n=256,
#: 2 blocks, seed=7) *before* the registry redesign.  They pin the facade —
#: and the legacy shims routed through it — to the pre-redesign behaviour.
PRE_REDESIGN_SCALAR_SEEDS = [34, 143]
PRE_REDESIGN_SCALAR_SIZES = [139, 145]
PRE_REDESIGN_PARALLEL_SEEDS = [207, 18]
PRE_REDESIGN_CONGEST_SEEDS = [171, 103]
PRE_REDESIGN_CONGEST_ROUNDS = 30255
PRE_REDESIGN_CONGEST_MESSAGES = 2627076
PRE_REDESIGN_KMACHINE_ROUNDS = 261669


class TestRegistry:
    def test_builtin_backends_present(self):
        names = available_backends()
        for expected in ("scalar", "batched", "parallel", "congest", "kmachine"):
            assert expected in names
        baselines = [name for name in names if name.startswith("baseline:")]
        assert "baseline:spectral" in baselines
        assert "baseline:label_propagation" in baselines
        assert len(baselines) == 5

    def test_unknown_backend_error_lists_available_names(self):
        with pytest.raises(BackendError) as excinfo:
            get_backend("bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        for name in available_backends():
            assert name in message

    def test_detect_rejects_unknown_backend(self, two_cliques_graph):
        with pytest.raises(BackendError, match="available backends"):
            detect(two_cliques_graph, backend="nope")

    def test_duplicate_registration_raises(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend("scalar", lambda *a: None)

    def test_register_and_unregister_custom_backend(self, two_cliques_graph):
        def runner(graph, params, config, delta_hint):
            return BackendOutcome(
                detection=DetectionResult(
                    num_vertices=graph.num_vertices, communities=()
                )
            )

        backend = register_backend("test:custom", runner, description="test only")
        try:
            assert "test:custom" in available_backends()
            assert get_backend("test:custom") is backend
            report = detect(two_cliques_graph, backend="test:custom")
            assert report.backend == "test:custom"
            assert report.detection.num_communities == 0
            with pytest.raises(BackendError):
                register_backend("test:custom", runner)
        finally:
            unregister_backend("test:custom")
        assert "test:custom" not in available_backends()
        with pytest.raises(BackendError):
            unregister_backend("test:custom")

    def test_backend_descriptions_nonempty(self):
        for name in available_backends():
            assert get_backend(name).description


class TestRunConfig:
    def test_rejects_unknown_dtype(self):
        with pytest.raises(BackendError, match="float64"):
            RunConfig(dtype="float16")

    def test_seeds_normalised_to_ints(self):
        config = RunConfig(seeds=np.asarray([3, 1, 4], dtype=np.int32))
        assert config.seeds == (3, 1, 4)
        assert all(isinstance(s, int) for s in config.seeds)

    def test_with_overrides(self):
        config = RunConfig(seed=1)
        updated = config.with_overrides(batch_size=32, workers=2)
        assert updated.seed == 1
        assert updated.batch_size == 32
        assert updated.workers == 2
        assert config.batch_size == 8  # original untouched

    def test_round_trips_through_dict(self):
        config = RunConfig(seed=5, seeds=(1, 2), num_communities=3, dtype="float32")
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_generator_seed_serializes_as_none(self):
        config = RunConfig(seed=np.random.default_rng(0))
        assert config.to_dict()["seed"] is None


class TestFacadeMatchesLegacyEntryPoints:
    """Acceptance: detect(graph, backend=b) ≡ the legacy entry point for every b."""

    def test_scalar_pool_loop(self, small_ppm):
        legacy = detect_communities(small_ppm.graph, delta_hint=0.05, seed=11)
        report = detect(
            small_ppm.graph, backend="scalar", delta_hint=0.05,
            config=RunConfig(seed=11),
        )
        assert report.detection == legacy
        assert report.phase_costs == {}
        assert report.total_cost is None
        # ... and the legacy shim still reproduces its pre-redesign RNG draws.
        assert legacy.seeds() == PRE_REDESIGN_SCALAR_SEEDS
        assert [r.size for r in legacy.communities] == PRE_REDESIGN_SCALAR_SIZES

    def test_scalar_explicit_seeds(self, small_ppm):
        listed = [detect_community(small_ppm.graph, s, delta_hint=0.05) for s in (0, 99)]
        report = detect(
            small_ppm.graph, backend="scalar", delta_hint=0.05,
            config=RunConfig(seeds=(0, 99)),
        )
        assert list(report.detection.communities) == listed

    def test_batched_pool_loop(self, small_ppm):
        legacy = detect_communities_batched(
            small_ppm.graph, delta_hint=0.05, seed=11, batch_size=4
        )
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seed=11, batch_size=4),
        )
        assert report.detection == legacy

    def test_batched_batch_size_one_is_rng_identical_to_scalar(self, small_ppm):
        scalar = detect_communities(small_ppm.graph, delta_hint=0.05, seed=11)
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seed=11, batch_size=1),
        )
        assert report.detection == scalar

    def test_batched_explicit_seed_batch(self, small_ppm):
        legacy = detect_community_batch(small_ppm.graph, [5, 40, 5], delta_hint=0.05)
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seeds=(5, 40, 5), batch_size=3),
        )
        assert list(report.detection.communities) == legacy

    def test_parallel(self, small_ppm):
        legacy = detect_communities_parallel(
            small_ppm.graph, 2, delta_hint=0.05, seed=3
        )
        report = detect(
            small_ppm.graph, backend="parallel", delta_hint=0.05,
            config=RunConfig(seed=3, num_communities=2),
        )
        assert report.detection == legacy
        assert legacy.seeds() == PRE_REDESIGN_PARALLEL_SEEDS

    def test_parallel_requires_num_communities(self, small_ppm):
        with pytest.raises(BackendError, match="num_communities"):
            detect(small_ppm.graph, backend="parallel", delta_hint=0.05)

    def test_parallel_invalid_arguments_keep_legacy_error_type(self, small_ppm):
        with pytest.raises(AlgorithmError):
            detect(
                small_ppm.graph, backend="parallel", delta_hint=0.05,
                config=RunConfig(num_communities=0),
            )

    def test_congest(self, small_ppm):
        legacy = detect_communities_congest(
            small_ppm.graph, delta_hint=0.05, seed=5, max_seeds=2
        )
        report = detect(
            small_ppm.graph, backend="congest", delta_hint=0.05,
            config=RunConfig(seed=5, max_seeds=2),
        )
        assert report.detection == legacy.detection
        assert report.total_cost == legacy.total_cost
        assert report.native_result == legacy
        # Pre-redesign RNG draws and cost accounting preserved.
        assert legacy.detection.seeds() == PRE_REDESIGN_CONGEST_SEEDS
        assert legacy.total_cost.rounds == PRE_REDESIGN_CONGEST_ROUNDS
        assert legacy.total_cost.messages == PRE_REDESIGN_CONGEST_MESSAGES

    def test_kmachine(self, small_ppm):
        legacy = detect_communities_kmachine(
            small_ppm.graph, 4, delta_hint=0.05, seed=5, partition_seed=1, max_seeds=2
        )
        report = detect(
            small_ppm.graph, backend="kmachine", delta_hint=0.05,
            config=RunConfig(seed=5, max_seeds=2, num_machines=4, partition_seed=1),
        )
        assert report.detection == legacy.detection
        assert report.total_cost == legacy.total_cost
        assert legacy.detection.seeds() == PRE_REDESIGN_CONGEST_SEEDS
        assert legacy.total_cost.rounds == PRE_REDESIGN_KMACHINE_ROUNDS

    def test_baseline_backends_match_direct_calls(self, small_ppm):
        from repro.baselines import label_propagation, spectral_clustering

        direct = label_propagation(small_ppm.graph, seed=21)
        report = detect(
            small_ppm.graph, backend="baseline:label_propagation",
            config=RunConfig(seed=21),
        )
        assert report.native_result.partition == direct.partition
        assert report.detection.detected_sets() == [
            c for c in direct.partition.communities() if c
        ]

        direct = spectral_clustering(small_ppm.graph, 2, seed=21)
        report = detect(
            small_ppm.graph, backend="baseline:spectral",
            config=RunConfig(seed=21, num_communities=2),
        )
        assert report.native_result.partition == direct.partition

    def test_spectral_requires_num_communities(self, small_ppm):
        with pytest.raises(BackendError, match="num_communities"):
            detect(small_ppm.graph, backend="baseline:spectral")


class TestRunReport:
    def test_phase_costs_sum_to_total(self, small_ppm):
        report = detect(
            small_ppm.graph, backend="congest", delta_hint=0.05,
            config=RunConfig(seed=5, max_seeds=2),
        )
        assert len(report.phase_costs) == 2
        assert sum(report.phase_costs.values()) == report.total_cost
        assert report.total_cost == report.native_result.total_cost

    def test_kmachine_costs_support_sum(self, small_ppm):
        report = detect(
            small_ppm.graph, backend="kmachine", delta_hint=0.05,
            config=RunConfig(seed=5, max_seeds=2, num_machines=2, partition_seed=0),
        )
        total = sum(report.phase_costs.values())
        assert total == report.total_cost
        assert total.rounds == sum(c.rounds for c in report.phase_costs.values())

    def test_timings_and_metadata(self, small_ppm):
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seed=1, max_seeds=1),
        )
        assert report.timings["total_seconds"] >= 0.0
        assert report.metadata["num_vertices"] == small_ppm.graph.num_vertices
        assert report.metadata["num_edges"] == small_ppm.graph.num_edges
        assert report.metadata["backend_description"]

    @pytest.mark.parametrize("backend", ["batched", "congest", "kmachine"])
    def test_json_round_trip(self, small_ppm, backend):
        report = detect(
            small_ppm.graph, backend=backend, delta_hint=0.05,
            config=RunConfig(seed=5, max_seeds=2, num_machines=2),
        )
        text = report.to_json()
        json.loads(text)  # valid JSON
        restored = RunReport.from_json(text)
        assert restored == report
        assert restored.native_result is None

    def test_capture_history_flag_skips_histories_end_to_end(self, small_ppm):
        """capture_history=False never builds the traces; results are unchanged.

        The flag used to drop histories only at JSON time; it now skips
        accumulating them in the detect loop itself, so the in-memory
        results arrive with empty histories while the communities, walk
        lengths, stop reasons and delta stay identical to a full run —
        and the JSON round trip becomes exact (empty in, empty out).
        """
        full = detect(
            small_ppm.graph, backend="scalar", delta_hint=0.05,
            config=RunConfig(seed=1, max_seeds=1),
        )
        slim = detect(
            small_ppm.graph, backend="scalar", delta_hint=0.05,
            config=RunConfig(seed=1, max_seeds=1, capture_history=False),
        )
        assert all(c.history == () for c in slim.detection.communities)
        assert any(c.history for c in full.detection.communities)
        for kept, dropped in zip(full.detection.communities, slim.detection.communities):
            assert kept.seed == dropped.seed
            assert kept.community == dropped.community
            assert kept.walk_length == dropped.walk_length
            assert kept.stop_reason == dropped.stop_reason
            assert kept.delta == dropped.delta
        assert len(slim.to_json()) < len(full.to_json())
        restored = RunReport.from_json(slim.to_json())
        assert restored == slim  # exact round trip now that histories are empty

    def test_overrides_apply_on_top_of_config(self, small_ppm):
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seed=11), batch_size=1, max_seeds=1,
        )
        assert report.config.batch_size == 1
        assert report.config.max_seeds == 1
        assert report.config.seed == 11

    def test_capture_distributions_artifact(self, small_ppm):
        """The final-walk snapshots ride the report instead of bypassing it."""
        from repro.core.batched import _detect_community_batch_impl

        seeds = (0, 9, 30)
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seeds=seeds, capture_distributions=True),
        )
        rows = report.artifacts["final_distributions"]
        assert len(rows) == len(report.detection.communities)
        assert all(len(row) == small_ppm.graph.num_vertices for row in rows)
        # Exactly the matrix the internal batch produces, column for column.
        _, finals = _detect_community_batch_impl(
            small_ppm.graph, list(seeds), None, 0.05, capture_distributions=True
        )
        assert np.array_equal(np.array(rows).T, finals)

    def test_capture_distributions_off_by_default(self, small_ppm):
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seeds=(0,)),
        )
        assert report.artifacts == {}
        assert report.to_dict()["artifacts"] == {}

    def test_capture_distributions_json_round_trip_is_exact(self, small_ppm):
        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seeds=(0, 9), capture_distributions=True),
        )
        restored = RunReport.from_json(report.to_json())
        assert restored == report
        assert restored.artifacts == report.artifacts  # exact floats, not approx

    def test_capture_distributions_pool_mode(self, small_ppm):
        from repro.core.batched import _detect_communities_batched_impl

        report = detect(
            small_ppm.graph, backend="batched", delta_hint=0.05,
            config=RunConfig(seed=3, max_seeds=3, capture_distributions=True),
        )
        rows = report.artifacts["final_distributions"]
        assert len(rows) == len(report.detection.communities)
        for row in rows:
            # Each snapshot is a full walk probability distribution.
            assert sum(row) == pytest.approx(1.0)
        # Rows align with the communities exactly as the impl emits them
        # (column i of the impl matrix = community i): a shard-order or
        # pool-round merge bug would misalign these.
        _, finals = _detect_communities_batched_impl(
            small_ppm.graph, None, 0.05, seed=3, max_seeds=3,
            capture_distributions=True,
        )
        assert np.array_equal(np.array(rows).T, finals)
