"""Tests for the Partition data structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.graphs import Partition


class TestConstruction:
    def test_from_labels(self):
        partition = Partition.from_labels([0, 0, 1, 1, 2])
        assert partition.num_communities == 3
        assert partition.sizes() == [2, 2, 1]

    def test_labels_renumbered_in_first_appearance_order(self):
        partition = Partition.from_labels([5, 5, 2, 2])
        assert list(partition.labels) == [0, 0, 1, 1]

    def test_unassigned_preserved(self):
        partition = Partition.from_labels([0, -1, 0, -1])
        assert partition.num_communities == 1
        assert list(partition.unassigned_vertices()) == [1, 3]
        assert not partition.is_complete()

    def test_from_communities(self):
        partition = Partition.from_communities([[0, 1], [3]], num_vertices=5)
        assert partition.community_of(0) == 0
        assert partition.community_of(3) == 1
        assert partition.community_of(4) == Partition.UNASSIGNED

    def test_from_communities_overlap_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_communities([[0, 1], [1, 2]], num_vertices=3)

    def test_from_communities_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_communities([[0, 5]], num_vertices=3)

    def test_labels_below_minus_one_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_labels([0, -2])

    def test_singletons_and_single_community(self):
        singles = Partition.singletons(4)
        whole = Partition.single_community(4)
        assert singles.num_communities == 4
        assert whole.num_communities == 1
        assert whole.sizes() == [4]


class TestAccessors:
    def test_members_and_containing(self):
        partition = Partition.from_labels([0, 1, 0, 1])
        assert partition.members(0) == frozenset({0, 2})
        assert partition.community_containing(1) == frozenset({1, 3})

    def test_containing_unassigned_raises(self):
        partition = Partition.from_labels([0, -1])
        with pytest.raises(PartitionError):
            partition.community_containing(1)

    def test_members_bad_id_raises(self):
        partition = Partition.from_labels([0, 0])
        with pytest.raises(PartitionError):
            partition.members(3)

    def test_membership_dict(self):
        partition = Partition.from_labels([0, -1, 1])
        assert partition.as_membership_dict() == {0: 0, 2: 1}

    def test_iteration_and_len(self):
        partition = Partition.from_labels([0, 1, 1])
        assert len(partition) == 2
        assert [len(c) for c in partition] == [1, 2]

    def test_vertex_out_of_range(self):
        partition = Partition.from_labels([0])
        with pytest.raises(PartitionError):
            partition.community_of(3)


class TestComparison:
    def test_agrees_with_ignores_label_names(self):
        a = Partition.from_labels([0, 0, 1, 1])
        b = Partition.from_labels([7, 7, 3, 3])
        assert a.agrees_with(b)

    def test_agrees_with_detects_difference(self):
        a = Partition.from_labels([0, 0, 1, 1])
        b = Partition.from_labels([0, 1, 1, 0])
        assert not a.agrees_with(b)

    def test_equality_and_hash(self):
        a = Partition.from_labels([0, 1])
        b = Partition.from_labels([0, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_restricted_to(self):
        partition = Partition.from_labels([0, 0, 1, 1])
        restricted = partition.restricted_to([0, 3])
        assert restricted.community_of(1) == Partition.UNASSIGNED
        assert restricted.community_of(0) != Partition.UNASSIGNED


class TestPropertyBased:
    @given(st.lists(st.integers(-1, 5), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_sizes_sum_to_assigned_count(self, labels):
        partition = Partition.from_labels(labels)
        assigned = sum(1 for label in labels if label != -1)
        assert sum(partition.sizes()) == assigned
        assert len(partition.assigned_vertices()) == assigned

    @given(st.lists(st.integers(-1, 5), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_communities_are_disjoint_and_cover_assigned(self, labels):
        partition = Partition.from_labels(labels)
        seen: set[int] = set()
        for community in partition.communities():
            assert not (seen & community)
            seen |= community
        assert seen == set(int(v) for v in partition.assigned_vertices())

    @given(st.lists(st.integers(-1, 5), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_normalisation_idempotent(self, labels):
        partition = Partition.from_labels(labels)
        again = Partition.from_labels(partition.labels)
        assert partition == again
