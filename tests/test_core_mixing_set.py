"""Tests for the localized largest-mixing-set search and CDRW parameters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CDRWParameters, MixingSetSearch, deviation_values, mixing_deficit_for_size
from repro.exceptions import AlgorithmError
from repro.graphs import Graph
from repro.randomwalk import WalkDistribution, stationary_distribution
from repro.utils import MIXING_THRESHOLD


class TestCdrwParameters:
    def test_defaults_match_paper(self):
        parameters = CDRWParameters()
        assert parameters.mixing_threshold == pytest.approx(1 / (2 * math.e))
        assert parameters.growth_factor == pytest.approx(1 + 1 / (8 * math.e))
        assert parameters.size_schedule == "geometric"

    def test_resolve_initial_size_is_log_n(self, small_gnp_graph):
        parameters = CDRWParameters()
        n = small_gnp_graph.num_vertices
        assert parameters.resolve_initial_size(small_gnp_graph) == round(math.log(n))

    def test_resolve_initial_size_override_and_clamp(self, triangle_graph):
        assert CDRWParameters(initial_size=2).resolve_initial_size(triangle_graph) == 2
        assert CDRWParameters(initial_size=50).resolve_initial_size(triangle_graph) == 3

    def test_resolve_max_walk_length_scales_with_log(self, small_gnp_graph):
        parameters = CDRWParameters(walk_length_factor=4)
        expected = 4 * math.ceil(math.log(small_gnp_graph.num_vertices))
        assert parameters.resolve_max_walk_length(small_gnp_graph) == expected
        assert CDRWParameters(max_walk_length=9).resolve_max_walk_length(small_gnp_graph) == 9

    def test_resolve_delta_priority(self, two_cliques_graph):
        explicit = CDRWParameters(delta=0.3)
        assert explicit.resolve_delta(two_cliques_graph, delta_hint=0.7) == 0.3
        hinted = CDRWParameters()
        assert hinted.resolve_delta(two_cliques_graph, delta_hint=0.4) == 0.4
        estimated = CDRWParameters()
        assert estimated.resolve_delta(two_cliques_graph) >= estimated.min_delta

    def test_resolve_delta_clamped_by_min_delta(self, two_cliques_graph):
        parameters = CDRWParameters(min_delta=0.05)
        assert parameters.resolve_delta(two_cliques_graph, delta_hint=0.0) == 0.05

    def test_validation_errors(self):
        with pytest.raises(AlgorithmError):
            CDRWParameters(mixing_threshold=0.0)
        with pytest.raises(AlgorithmError):
            CDRWParameters(growth_factor=1.0)
        with pytest.raises(AlgorithmError):
            CDRWParameters(delta=-0.1)
        with pytest.raises(AlgorithmError):
            CDRWParameters(size_schedule="exponential")
        with pytest.raises(AlgorithmError):
            CDRWParameters(min_mass=1.5)
        with pytest.raises(AlgorithmError):
            CDRWParameters(delta=0.1).resolve_delta  # attribute access fine
            CDRWParameters().resolve_delta(Graph(3, []), delta_hint=-1.0)

    def test_with_overrides(self):
        base = CDRWParameters()
        changed = base.with_overrides(delta=0.2, lazy_walk=True)
        assert changed.delta == 0.2
        assert changed.lazy_walk is True
        assert base.delta is None


class TestDeviationValues:
    def test_formula(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(3)
        size = 5
        values = deviation_values(two_cliques_graph, walk.probabilities(), size)
        average_volume = two_cliques_graph.volume / 10 * size
        expected = np.abs(
            walk.probabilities() - two_cliques_graph.degrees() / average_volume
        )
        assert np.allclose(values, expected)

    def test_invalid_inputs(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        with pytest.raises(AlgorithmError):
            deviation_values(two_cliques_graph, walk.probabilities(), 0)
        with pytest.raises(AlgorithmError):
            deviation_values(two_cliques_graph, np.zeros(3), 5)
        with pytest.raises(AlgorithmError):
            deviation_values(Graph(3, []), np.zeros(3), 1)


class TestMixingDeficitForSize:
    def test_full_size_at_stationarity_has_zero_deficit(self, two_cliques_graph):
        pi = stationary_distribution(two_cliques_graph)
        deficit, mass, members = mixing_deficit_for_size(two_cliques_graph, pi, 10)
        assert deficit == pytest.approx(0.0, abs=1e-12)
        assert mass == pytest.approx(1.0)
        assert len(members) == 10

    def test_selects_smallest_deviations(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(6)
        deficit, mass, members = mixing_deficit_for_size(
            two_cliques_graph, walk.probabilities(), 5
        )
        values = deviation_values(two_cliques_graph, walk.probabilities(), 5)
        assert deficit == pytest.approx(np.sort(values)[:5].sum())
        assert len(members) == 5


class TestMixingSetSearch:
    def test_finds_clique_after_mixing(self, two_cliques_graph):
        # Start from a non-bridge vertex: the walk mixes inside its 5-clique
        # within a few steps, and some walk length must exhibit a mixing set
        # covering (at least) that clique.
        search = MixingSetSearch(two_cliques_graph, initial_size=2)
        walk = WalkDistribution(two_cliques_graph, 1)
        best = None
        for length in range(1, 12):
            walk.step()
            result = search.largest_mixing_set(walk.probabilities(), length)
            if result.found and (best is None or result.size > best.size):
                best = result
        assert best is not None
        assert best.size >= 5
        assert best.deficit < MIXING_THRESHOLD
        assert best.mass >= 0.5

    def test_finds_whole_graph_at_stationarity(self, two_cliques_graph):
        search = MixingSetSearch(two_cliques_graph, initial_size=2)
        result = search.largest_mixing_set(stationary_distribution(two_cliques_graph), 100)
        assert result.size == 10

    def test_initial_distribution_finds_nothing(self, two_cliques_graph):
        search = MixingSetSearch(two_cliques_graph, initial_size=2)
        walk = WalkDistribution(two_cliques_graph, 0)
        result = search.largest_mixing_set(walk.probabilities(), 0)
        assert not result.found
        assert result.members == frozenset()

    def test_mass_condition_rejects_low_mass_sets(self, two_cliques_graph):
        # With min_mass=1.0 nothing short of the full stationary distribution passes.
        search = MixingSetSearch(two_cliques_graph, initial_size=2, min_mass=1.0)
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(4)
        strict = search.largest_mixing_set(walk.probabilities(), 4)
        relaxed = MixingSetSearch(two_cliques_graph, initial_size=2, min_mass=0.0)
        loose = relaxed.largest_mixing_set(walk.probabilities(), 4)
        assert strict.size <= loose.size

    def test_candidate_sizes_schedules(self, two_cliques_graph):
        geometric = MixingSetSearch(two_cliques_graph, initial_size=2)
        linear = MixingSetSearch(two_cliques_graph, initial_size=2, schedule="linear")
        assert geometric.candidate_sizes[0] == 2
        assert geometric.candidate_sizes[-1] == 10
        assert linear.candidate_sizes == list(range(2, 11))

    def test_geometric_and_linear_agree_on_small_graph(self, two_cliques_graph):
        walk = WalkDistribution(two_cliques_graph, 0)
        walk.run_to(6)
        geometric = MixingSetSearch(two_cliques_graph, initial_size=2)
        linear = MixingSetSearch(two_cliques_graph, initial_size=2, schedule="linear")
        a = geometric.largest_mixing_set(walk.probabilities(), 6)
        b = linear.largest_mixing_set(walk.probabilities(), 6)
        # The linear schedule examines every size, so it can only find an
        # equal or larger mixing set.
        assert b.size >= a.size

    def test_stop_at_first_failure_is_more_conservative(self, small_ppm):
        graph = small_ppm.graph
        walk = WalkDistribution(graph, 0)
        walk.run_to(3)
        scan_all = MixingSetSearch(graph, initial_size=5)
        first_failure = MixingSetSearch(graph, initial_size=5, stop_at_first_failure=True)
        a = scan_all.largest_mixing_set(walk.probabilities(), 3)
        b = first_failure.largest_mixing_set(walk.probabilities(), 3)
        assert b.size <= a.size

    def test_invalid_construction(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            MixingSetSearch(two_cliques_graph, initial_size=0)
        with pytest.raises(AlgorithmError):
            MixingSetSearch(two_cliques_graph, initial_size=2, schedule="bogus")
        with pytest.raises(AlgorithmError):
            MixingSetSearch(two_cliques_graph, initial_size=2, min_mass=2.0)
        with pytest.raises(AlgorithmError):
            MixingSetSearch(Graph(0, []), initial_size=1)
