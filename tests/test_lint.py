"""Unit tests of the ``repro lint`` invariant checker (:mod:`repro.analysis`).

Every rule gets one violating and one clean fixture, plus cases for the
inline suppression comments, multi-file diagnostic ordering, and the
self-check that the repository's own tree lints clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Diagnostic, all_rules, get_rule, lint_file, lint_paths, main
from repro.analysis.diagnostics import Suppressions
from repro.analysis.linter import SYNTAX_ERROR_CODE
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
TESTS = REPO_ROOT / "tests"


def write_module(tmp_path: Path, relative: str, source: str) -> Path:
    """Write a dedented fixture module under ``tmp_path`` and return its path."""
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes_of(path: Path) -> list[str]:
    return [diagnostic.code for diagnostic in lint_file(path)]


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_rules_registered_with_stable_codes(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert {
            "REP101",
            "REP102",
            "REP103",
            "REP104",
            "REP105",
            "REP106",
            "REP107",
            "REP108",
        } <= set(codes)

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rep101").code == "REP101"

    def test_every_rule_names_itself(self):
        for rule in all_rules():
            assert rule.name and rule.summary


# ----------------------------------------------------------------------
# REP101 — RNG discipline
# ----------------------------------------------------------------------
class TestRngDiscipline:
    def test_flags_stdlib_random_import(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/bad_rng.py",
            """
            import random

            def draw():
                return random.random()
            """,
        )
        assert "REP101" in codes_of(path)

    def test_flags_legacy_numpy_random_globals(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/bad_np_rng.py",
            """
            import numpy as np

            def draw(n):
                np.random.seed(0)
                return np.random.randint(0, n)
            """,
        )
        assert codes_of(path).count("REP101") == 2

    def test_flags_from_numpy_random_legacy_import(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/bad_from_rng.py",
            """
            from numpy.random import randint
            """,
        )
        assert "REP101" in codes_of(path)

    def test_clean_generator_discipline(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/good_rng.py",
            """
            import numpy as np

            def draw(rng: np.random.Generator, n: int) -> int:
                return int(rng.integers(0, n))

            def make_rng(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# REP102 — exact round accounting
# ----------------------------------------------------------------------
class TestExactLog2:
    def test_flags_math_log2_in_round_accounting_packages(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/congest/bad_rounds.py",
            """
            import math

            def rounds(n):
                return int(math.ceil(math.log2(n)))
            """,
        )
        assert "REP102" in codes_of(path)

    def test_flags_log2_import_and_numpy_log2(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/kmachine/bad_rounds.py",
            """
            import numpy as np
            from math import log2

            def rounds(n):
                return int(np.log2(n))
            """,
        )
        assert codes_of(path).count("REP102") == 2

    def test_clean_ceil_log2(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/randomwalk/good_rounds.py",
            """
            from repro.utils import ceil_log2

            def rounds(n):
                return ceil_log2(max(n, 2))
            """,
        )
        assert codes_of(path) == []

    def test_out_of_scope_packages_may_use_float_log2(self, tmp_path):
        # experiments/ builds float ratio formulas (0.2·log₂²n …) — not
        # integer round counts — so the rule does not apply there.
        path = write_module(
            tmp_path,
            "repro/experiments/ratios.py",
            """
            import math

            def ratio(n):
                return 0.2 * math.log2(n) ** 2
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# REP103 — shared-memory hygiene
# ----------------------------------------------------------------------
class TestSharedMemoryFinalizer:
    def test_flags_class_without_finalizer(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/leaky.py",
            """
            from multiprocessing import shared_memory

            class Broadcast:
                def share(self, nbytes):
                    self._segment = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )
                    return self._segment.name
            """,
        )
        assert "REP103" in codes_of(path)

    def test_flags_module_level_creation(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/leaky_module.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            segment = SharedMemory(create=True, size=64)
            """,
        )
        assert "REP103" in codes_of(path)

    def test_clean_class_with_finalizer(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/guarded.py",
            """
            import weakref
            from multiprocessing import shared_memory

            class Broadcast:
                def __init__(self):
                    self._segments = []
                    self._finalizer = weakref.finalize(
                        self, _release, self._segments
                    )

                def share(self, nbytes):
                    segment = shared_memory.SharedMemory(create=True, size=nbytes)
                    self._segments.append(segment)
                    return segment.name

            def _release(segments):
                for segment in segments:
                    segment.close()
            """,
        )
        # REP103 is satisfied; REP107 still flags the segment construction
        # because the fixture lives outside graphs/storage.py.
        assert codes_of(path) == ["REP107"]

    def test_attaching_existing_segments_is_fine(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/attach.py",
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """,
        )
        # Attach needs no finalizer (REP103 clean) but is still a raw
        # segment handle, which REP107 confines to the storage layer.
        assert codes_of(path) == ["REP107"]


# ----------------------------------------------------------------------
# REP104 — registry discipline
# ----------------------------------------------------------------------
class TestRegistryDiscipline:
    def test_flags_impl_import_outside_engine(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/bypass.py",
            """
            from repro.core.batched import _detect_communities_batched_impl

            def run(graph):
                return _detect_communities_batched_impl(graph, None, None)
            """,
        )
        # Both the import and the call-site name reference are attributable;
        # the import line is the one that must be flagged.
        diagnostics = lint_file(path)
        assert any(d.code == "REP104" and d.line == 2 for d in diagnostics)

    def test_flags_impl_attribute_access(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/bypass_attr.py",
            """
            from repro.core import batched

            def run(graph):
                return batched._detect_communities_batched_impl(graph, None, None)
            """,
        )
        assert "REP104" in codes_of(path)

    @pytest.mark.parametrize(
        "relative",
        [
            "repro/api.py",
            "repro/session.py",
            "repro/execution_process.py",
            "repro/core/parallel.py",
            "tests/test_backdoor.py",
        ],
    )
    def test_engine_internals_and_tests_are_exempt(self, tmp_path, relative):
        path = write_module(
            tmp_path,
            relative,
            """
            from repro.core.batched import _detect_communities_batched_impl
            """,
        )
        assert codes_of(path) == []

    def test_clean_facade_usage(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/facade.py",
            """
            from repro.api import detect

            def run(graph):
                return detect(graph, backend="batched")
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# REP105 — kernel dtype discipline
# ----------------------------------------------------------------------
class TestExplicitDtype:
    def test_flags_allocation_without_dtype(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/randomwalk/alloc.py",
            """
            import numpy as np

            def buffers(n):
                a = np.zeros(n)
                b = np.empty((n, 2))
                c = np.ones(n)
                d = np.full(n, -1)
                return a, b, c, d
            """,
        )
        assert codes_of(path) == ["REP105"] * 4

    def test_clean_explicit_dtype(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/core/alloc.py",
            """
            import numpy as np

            def buffers(n):
                a = np.zeros(n, dtype=np.float64)
                b = np.empty((n, 2), dtype=np.int64)
                c = np.full(n, -1, dtype=np.int64)
                d = np.zeros(n, bool)  # positional dtype is accepted
                return a, b, c, d
            """,
        )
        assert codes_of(path) == []

    def test_out_of_scope_package_not_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/alloc.py",
            """
            import numpy as np

            def scratch(n):
                return np.zeros(n)
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# REP106 — picklable worker tasks
# ----------------------------------------------------------------------
class TestPicklableTask:
    def test_flags_lambda_submission(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/pool_lambda.py",
            """
            def run(executor, items):
                return [executor.submit(lambda item: item + 1, item) for item in items]
            """,
        )
        assert "REP106" in codes_of(path)

    def test_flags_nested_function_submission(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/pool_closure.py",
            """
            def run(executor, items):
                def task(item):
                    return item + 1

                return [executor.submit(task, item) for item in items]
            """,
        )
        assert "REP106" in codes_of(path)

    def test_clean_module_level_submission(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/pool_clean.py",
            """
            def _task(item):
                return item + 1

            def run(executor, items):
                return [executor.submit(_task, item) for item in items]
            """,
        )
        assert codes_of(path) == []


# ----------------------------------------------------------------------
# REP107 — storage-layer confinement
# ----------------------------------------------------------------------
class TestStorageLayer:
    def test_flags_shared_memory_outside_storage(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/rogue_segment.py",
            """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            class Owner:
                def __init__(self, size):
                    self._finalizer = weakref.finalize(self, lambda: None)
                    self._segment = SharedMemory(create=True, size=size)
            """,
        )
        assert "REP107" in codes_of(path)

    def test_flags_np_memmap_outside_storage(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/rogue_map.py",
            """
            import numpy as np

            def load(path, n):
                return np.memmap(path, dtype=np.int64, mode="r", shape=(n,))
            """,
        )
        assert "REP107" in codes_of(path)

    def test_flags_open_memmap(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/rogue_open.py",
            """
            from numpy.lib.format import open_memmap

            def load(path):
                return open_memmap(path, mode="r")
            """,
        )
        assert "REP107" in codes_of(path)

    def test_storage_module_itself_is_exempt(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/graphs/storage.py",
            """
            import numpy as np

            def map_array(path, n):
                return np.memmap(path, dtype=np.int64, mode="r", shape=(n,))
            """,
        )
        assert "REP107" not in codes_of(path)

    def test_annotations_naming_the_types_are_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/typed_handle.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def close_segment(segment: SharedMemory) -> None:
                segment.close()
            """,
        )
        assert "REP107" not in codes_of(path)

    def test_tests_are_exempt(self, tmp_path):
        path = write_module(
            tmp_path,
            "tests/test_rogue.py",
            """
            import numpy as np

            def test_mapping(path):
                assert np.memmap(path, dtype=np.int64, mode="r").size >= 0
            """,
        )
        assert "REP107" not in codes_of(path)


# ----------------------------------------------------------------------
# REP108 — no blocking calls in service coroutines
# ----------------------------------------------------------------------
class TestAsyncNoBlocking:
    def test_flags_time_sleep_and_bare_result_in_coroutine(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import time

            async def detect(self, seed):
                time.sleep(0.1)
                future = self.submit(seed)
                return future.result()
            """,
        )
        assert codes_of(path).count("REP108") == 2

    def test_flags_sync_io_in_coroutine(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service_net.py",
            """
            import socket

            async def handle(self, request):
                connection = socket.create_connection(("localhost", 80))
                with open("/tmp/log") as handle:
                    handle.read()
                return connection.recv(1)
            """,
        )
        assert codes_of(path).count("REP108") == 3

    def test_result_with_timeout_and_async_idiom_are_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import asyncio

            async def detect(self, seed):
                await asyncio.sleep(0)
                return await asyncio.wrap_future(self.submit(seed))

            def blocking_surface(self, seed):
                # Sync defs may block; the rule only polices coroutines.
                return self.submit(seed).result(timeout=60)
            """,
        )
        assert "REP108" not in codes_of(path)

    def test_nested_sync_def_inside_coroutine_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/service.py",
            """
            import time

            async def detect(self, seed):
                def worker():
                    time.sleep(0.1)
                    return self.submit(seed).result()
                loop = self.loop
                return await loop.run_in_executor(None, worker)
            """,
        )
        assert "REP108" not in codes_of(path)

    def test_other_modules_are_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/experiments/runner.py",
            """
            import time

            async def sweep(self):
                time.sleep(0.1)
            """,
        )
        assert "REP108" not in codes_of(path)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_disable_silences_only_that_line(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/core/suppressed.py",
            """
            import numpy as np

            def buffers(n):
                a = np.zeros(n)  # repro-lint: disable=REP105
                b = np.zeros(n)
                return a, b
            """,
        )
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == ["REP105"]
        assert diagnostics[0].line == 6  # the un-suppressed allocation

    def test_disable_file_silences_the_whole_file(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/core/suppressed_file.py",
            """
            # repro-lint: disable-file=REP105
            import numpy as np

            def buffers(n):
                return np.zeros(n), np.empty(n)
            """,
        )
        assert codes_of(path) == []

    def test_disable_all_and_multiple_codes(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/randomwalk/suppressed_multi.py",
            """
            import math
            import numpy as np

            def rounds(n):
                return np.zeros(n), math.log2(n)  # repro-lint: disable=REP105,REP102
            """,
        )
        assert codes_of(path) == []

    def test_directive_inside_string_is_not_a_suppression(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/core/string_trap.py",
            """
            import numpy as np

            def buffers(n):
                note = "repro-lint: disable=REP105"
                return np.zeros(n), note
            """,
        )
        assert codes_of(path) == ["REP105"]

    def test_suppression_parser_units(self):
        suppressions = Suppressions.from_source(
            "x = 1  # repro-lint: disable=rep101, REP105\n"
            "# repro-lint: disable-file=all\n"
        )
        assert suppressions.is_suppressed(1, "REP101")
        assert suppressions.is_suppressed(1, "REP105")
        # disable-file=all silences everything everywhere.
        assert suppressions.is_suppressed(99, "REP103")


# ----------------------------------------------------------------------
# Diagnostics: format, ordering, syntax errors
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_format_is_path_line_col_code_message(self):
        diagnostic = Diagnostic(
            path="src/repro/x.py", line=3, column=7, code="REP105", message="boom"
        )
        assert diagnostic.format() == "src/repro/x.py:3:7: REP105 boom"

    def test_multi_file_diagnostics_are_ordered(self, tmp_path):
        write_module(
            tmp_path,
            "repro/randomwalk/b_second.py",
            """
            import numpy as np

            def f(n):
                return np.zeros(n), np.ones(n)
            """,
        )
        write_module(
            tmp_path,
            "repro/randomwalk/a_first.py",
            """
            import math
            import numpy as np

            def f(n):
                return np.zeros(n), math.log2(n)
            """,
        )
        result = lint_paths([tmp_path])
        assert result.files_checked == 2
        ordered = [(Path(d.path).name, d.line, d.code) for d in result.diagnostics]
        # (path, line, column, code) order: a_first before b_second, and on
        # a_first line 6 the np.zeros call (col 12) anchors before
        # math.log2 (col 25), so REP105 precedes REP102.
        assert ordered == [
            ("a_first.py", 6, "REP105"),
            ("a_first.py", 6, "REP102"),
            ("b_second.py", 5, "REP105"),
            ("b_second.py", 5, "REP105"),
        ]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = write_module(tmp_path, "repro/broken.py", "def f(:\n")
        diagnostics = lint_file(path)
        assert [d.code for d in diagnostics] == [SYNTAX_ERROR_CODE]


# ----------------------------------------------------------------------
# The command-line front end and the self-check
# ----------------------------------------------------------------------
class TestCommandLine:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "repro/core/clean.py",
            """
            import numpy as np

            def f(n):
                return np.zeros(n, dtype=np.float64)
            """,
        )
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_nonzero_with_file_line_diagnostics(self, tmp_path, capsys):
        path = write_module(
            tmp_path,
            "repro/core/dirty.py",
            """
            import numpy as np

            def f(n):
                return np.zeros(n)
            """,
        )
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert f"{path}:5:12: REP105" in captured.out
        assert "1 diagnostic" in captured.err

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP101",
            "REP102",
            "REP103",
            "REP104",
            "REP105",
            "REP106",
            "REP107",
            "REP108",
        ):
            assert code in out

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        path = write_module(
            tmp_path,
            "repro/core/dirty.py",
            """
            import numpy as np

            def f(n):
                return np.empty(n)
            """,
        )
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "REP105" in capsys.readouterr().out
        assert cli_main(["lint", "--list-rules"]) == 0


class TestSelfCheck:
    def test_repro_lint_src_exits_zero(self, capsys):
        """The repository's own tree satisfies every invariant it enforces."""
        assert main([str(SRC)]) == 0
        assert capsys.readouterr().out == ""

    def test_repro_lint_tests_exits_zero(self, capsys):
        assert main([str(TESTS)]) == 0
        assert capsys.readouterr().out == ""
