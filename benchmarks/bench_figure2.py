"""Benchmark: Figure 2 — CDRW accuracy on G(n, p) random graphs.

Paper's claim: the F-score increases with n, is essentially 1.0 for
n >= 2^10, and increases with the density p.
"""

from __future__ import annotations

from repro.experiments import figure2_grid, render_experiment


def test_figure2_gnp_accuracy(once, capsys):
    table = once(
        figure2_grid,
        sizes=(128, 256, 512, 1024, 2048, 4096),
        p_specs=("2logn/n", "2log2n/n"),
        trials=2,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    by_spec: dict[str, list[tuple[int, float]]] = {}
    for row in table.rows:
        by_spec.setdefault(str(row.parameters["p"]), []).append(
            (int(row.parameters["n"]), row.measurements["f_score"])
        )
    for spec, series in by_spec.items():
        series.sort()
        # Large graphs are detected as a single community almost perfectly.
        assert series[-1][1] > 0.95, f"{spec}: F-score at n=4096 should be ~1.0"
        # Accuracy at the largest size is at least that at the smallest size.
        assert series[-1][1] >= series[0][1] - 0.02
