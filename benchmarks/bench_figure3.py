"""Benchmark: Figure 3 — CDRW accuracy on 2-block PPM graphs (n = 2^11).

Paper's claim: for the sparse intra-community density p = 2 log n / n the two
communities are detected with F-score > 0.90 when q is 0.1/n or 0.6/n, and
accuracy degrades as q grows towards log²n/n.
"""

from __future__ import annotations

from repro.experiments import figure3_grid, render_experiment


def test_figure3_ppm_accuracy(once, capsys):
    table = once(
        figure3_grid,
        n=2048,
        p_specs=("2logn/n", "2log2n/n", "log2n/n"),
        q_specs=("0.1/n", "0.6/n", "logn/n", "log2n/n"),
        trials=2,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    scores = {
        (str(row.parameters["p"]), str(row.parameters["q"])): row.measurements["f_score"]
        for row in table.rows
    }
    # Headline claim: sparse p with small q is detected accurately.
    assert scores[("2logn/n", "0.1/n")] > 0.85
    assert scores[("2logn/n", "0.6/n")] > 0.80
    assert scores[("2log2n/n", "0.1/n")] > 0.90
    # Accuracy is monotone (up to noise) in the separation: the small-q cells
    # beat the large-q cells for the same p.
    assert scores[("2logn/n", "0.1/n")] >= scores[("2logn/n", "log2n/n")] - 0.05
    assert scores[("2log2n/n", "0.1/n")] >= scores[("2log2n/n", "log2n/n")] - 0.05
