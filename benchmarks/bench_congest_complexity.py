"""Benchmark: Theorem 5/6 — CONGEST round and message complexity of CDRW.

Paper's claim: detecting one community takes O(log^4 n) rounds and
Õ((n²/r)(p + q(r−1))) messages.  The benchmark measures both on a sweep of
graph sizes and checks that the measured/bound ratios stay bounded (i.e. the
measured quantities grow no faster than the bounds).
"""

from __future__ import annotations

from repro.experiments import congest_scaling, render_experiment


def test_congest_round_and_message_scaling(once, capsys):
    table = once(
        congest_scaling,
        sizes=(128, 256, 512, 1024),
        num_blocks=2,
        p_spec="2log2n/n",
        q_spec="0.6/n",
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    round_ratios = table.series("rounds_over_bound")
    message_ratios = table.series("messages_over_bound")
    # Polylogarithmic rounds: the measured/log^4 n ratio must not blow up as n
    # grows (allow a 4x drift across an 8x size range for constants to settle).
    assert round_ratios[-1] < 4 * max(round_ratios[0], 1.0)
    # Message bound likewise.
    assert message_ratios[-1] < 4 * max(message_ratios[0], 1.0)
    # Rounds grow far slower than the graph size.
    rounds = table.series("rounds")
    assert rounds[-1] / rounds[0] < (1024 / 128) ** 1.5
