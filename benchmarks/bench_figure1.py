"""Benchmark: regenerate the Figure 1 PPM instance and report its structure.

The paper's Figure 1 is a drawing of a PPM graph with n=1000, r=5, p=1/20,
q=1/1000; the quantitative content reproduced here is the per-block
intra/inter edge statistics and conductance of that instance.
"""

from __future__ import annotations

from repro.experiments import figure1_stats, render_experiment


def test_figure1_ppm_structure(once, capsys):
    table = once(figure1_stats, n=1000, num_blocks=5, p=1.0 / 20.0, q=1.0 / 1000.0, seed=0)
    with capsys.disabled():
        print()
        print(render_experiment(table))
    # Sanity of the reproduced structure: every block is dominated by
    # intra-community edges, as the figure illustrates.
    for row in table.rows:
        assert row.measurements["intra_edges"] > row.measurements["inter_edges"]
