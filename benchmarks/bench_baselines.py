"""Benchmark: CDRW against the related-work baselines on a Figure-3 workload.

There is no numerical baseline table in the paper; this benchmark makes the
related-work comparison concrete (Section II): CDRW's accuracy should be in
the same league as the centralized methods (spectral, Walktrap) on a
well-separated PPM instance, while the lightweight two-community protocols
show their structural limits.
"""

from __future__ import annotations

from repro.experiments import compare_baselines, render_experiment


def test_baseline_comparison_two_blocks(once, capsys):
    table = once(
        compare_baselines,
        n=1024,
        num_blocks=2,
        p_spec="2log2n/n",
        q_spec="0.6/n",
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    scores = {str(row.parameters["method"]): row.measurements["f_score"] for row in table.rows}
    assert scores["cdrw"] > 0.85
    assert scores["spectral"] > 0.9
    # CDRW is within striking distance of the centralized upper bound.
    assert scores["cdrw"] > scores["spectral"] - 0.15


def test_baseline_comparison_many_blocks(once, capsys):
    """Four blocks: the two-community protocols (averaging, Clementi) cannot
    represent the structure, while CDRW and spectral still can."""
    table = once(
        compare_baselines,
        n=2048,
        num_blocks=4,
        p_spec="2log2n/n",
        q_spec="0.1/n",
        seed=1,
        methods=("cdrw", "averaging_dynamics", "clementi", "spectral"),
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    scores = {str(row.parameters["method"]): row.measurements["f_score"] for row in table.rows}
    assert scores["cdrw"] > 0.8
    assert scores["cdrw"] > scores["averaging_dynamics"]
    assert scores["cdrw"] > scores["clementi"]
