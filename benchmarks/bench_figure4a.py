"""Benchmark: Figure 4a — accuracy vs number of communities, fixed community size.

Paper's claim: increasing the number of communities r (with each community
kept at 2^10 vertices, so n = r * 2^10) decreases the accuracy only slightly.
"""

from __future__ import annotations

from repro.experiments import figure4a_grid, render_experiment


def test_figure4a_fixed_community_size(once, capsys):
    table = once(
        figure4a_grid,
        block_counts=(2, 4, 8),
        community_size=1024,
        ratio_specs=("1.2log2^2(n)", "0.2log2^2(n)"),
        trials=2,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    well_separated = {
        int(row.parameters["r"]): row.measurements["f_score"]
        for row in table.rows
        if row.parameters["p_over_q"] == "1.2log2^2(n)"
    }
    # The well-separated curve stays accurate for every r and decreases only
    # slightly with r, as in the paper.
    assert all(score > 0.8 for score in well_separated.values())
    assert well_separated[2] >= well_separated[8] - 0.05
