"""Benchmark harness configuration.

Every benchmark regenerates one figure or table of the paper.  Reproducing a
figure means running the full experiment grid, which is deliberately executed
exactly once per benchmark (``pedantic`` with one round): the quantity of
interest is the experiment's *output* (printed as a text table and attached to
the benchmark's ``extra_info``), with wall-clock time as a secondary signal.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` for terser benchmark bodies."""

    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
