"""Throughput benchmark: vectorized graph kernel vs the seed scalar path.

Measures, on a 1M-edge random graph:

* **construction** — ``Graph.from_edge_array`` (COO→CSR scatter) against the
  seed's one-tuple-at-a-time set loop (:func:`repro.graphs.reference.scalar_csr_arrays`);
* **subset kernels** — vectorized ``cut_size`` / ``induced_edge_count`` /
  ``induced_subgraph`` against the per-vertex reference loops;
* **64-seed walk advance** — one :class:`BatchedWalkDistribution` (single
  CSR SpMM per step) against the seed scalar path, which pays one operator
  construction (``transition_matrix(G).T.tocsr()``, exactly as the seed
  ``WalkDistribution.__init__`` did) plus one mat-vec *per seed* — that is
  what 64 sequential ``detect_community`` calls cost per walk step;
* **steady-state step** — batched vs scalar stepping with operators already
  built, reported for transparency (the win here is bounded by memory
  bandwidth, not by call overhead);
* **batched mixing-set search** — one
  :class:`BatchedMixingSetSearch.largest_mixing_sets` call over ``B``
  walk columns against ``B`` scalar ``largest_mixing_set`` calls (what the
  pre-batching ``detect_community_batch`` inner loop paid per step), at
  ``B ∈ {1, 8, 64}`` on a 250k-edge graph;
* **parallel detection** — ``detect_communities_parallel`` (one shared
  batched walk + conflict resolution) against the pre-port scalar per-seed
  loop over the same spread seeds, at ``r ∈ {1, 8, 64}`` on an 8-block PPM;
* **worker scaling** — the 64-seed steady-state step and the B=64 batched
  mixing-set search at ``workers ∈ {1, 2, 4}`` threads (the multi-core
  execution layer of :mod:`repro.execution`; results are bit-identical at
  every worker count, only the wall clock moves);
* **process executor** — a 32-seed batched detection through the facade on
  the serial in-process path against the shared-memory process tier
  (:mod:`repro.execution_process`) at ``workers ∈ {1, 2, 4}`` processes;
  detections are identical on every row, only the wall clock moves;
* **storage tiers** — the 32-seed detection once more on the same graph
  read back from a memmapped binary CSR file (``memmap_detect_s``), gated
  on producing the exact in-RAM detection;
* **sharded executor** — the same detection through the ``"sharded"``
  backend at ``workers ∈ {1, 2, 4}`` shard processes, each holding only its
  vertex partition's operator rows; detections must equal the serial rows
  exactly, and the boundary traffic of the k=4 run is archived
  (``sharded_boundary_bytes``);
* **resident session** — a stream of small detection requests on the same
  graph answered once with a fresh ``detect()`` per request (each paying
  the broadcast + pool fork + operator build) and once through a single
  :class:`repro.DetectionSession`, which broadcasts exactly once and keeps
  the pool and cached operators resident; answers are bit-identical;
* **coalescing service** — a stream of single-seed requests answered once
  by a serialized session loop (one full batched pass per request) and
  once through :class:`repro.DetectionService` at ``clients ∈ {1, 4, 16}``
  concurrent submitters, whose dispatcher coalesces pending requests into
  ``detect_batch`` waves where width is nearly free; every reply must be
  bit-identical to its serialized counterpart, and at 16 clients the
  stream must collapse into fewer waves than requests.

Run directly (``python benchmarks/bench_graph_kernel.py``) for the table, or
through pytest (``pytest benchmarks/bench_graph_kernel.py``) to enforce the
acceptance thresholds: construction and the 64-seed walk advance must be at
least 10× faster than the seed scalar path, the 64-column batched
mixing-set search must beat the per-column loop, on machines with at least
two cores the threaded step and threaded search must each beat their
``workers=1`` timing by ≥ 1.3×, and on machines with at least four cores
the process tier must beat the serial facade by ≥ 1.5×, the resident
session must beat the per-call setup loop by ≥ 2×, and the coalescing
service at 16 concurrent clients must beat the serialized session loop by
≥ 2× (the scaling guards are skipped on smaller hosts, where the
equivalence tests still gate the parallel paths and the session/service
identity and coalescing checks still run).
"""

from __future__ import annotations

import argparse
import datetime
import functools
import json
import os
import platform
import tempfile
import time

import threading

import numpy as np
import pytest

from repro.api import RunConfig, RunReport, detect
from repro.core import BatchedMixingSetSearch, MixingSetSearch
from repro.core.parallel import select_spread_seeds
from repro.graphs import (
    Graph,
    planted_partition_graph,
    ppm_expected_conductance,
    read_csr_graph,
    write_csr_graph,
)
from repro.graphs.reference import (
    scalar_csr_arrays,
    scalar_cut_size,
    scalar_induced_edge_count,
    scalar_induced_subgraph_edges,
)
from repro.randomwalk import BatchedWalkDistribution, transition_matrix
from repro.service import DetectionService
from repro.session import DetectionSession
from repro.utils import log_size

NUM_VERTICES = 200_000
NUM_EDGES = 1_000_000
NUM_SEEDS = 64
REQUIRED_SPEEDUP = 10.0

# The mixing-set search and parallel detection scan the full candidate-size
# schedule per walk step, so they are measured on smaller instances sized
# like the experiment workloads (at n ≳ 50k the search is memory-bound and
# batched ≈ scalar on one core; the batching win is call-overhead and
# shared-target amortization, which dominates at experiment sizes).
SEARCH_VERTICES = 4_096
SEARCH_EDGES = 20_000
PARALLEL_VERTICES = 2_048
PARALLEL_BLOCKS = 8
BATCH_WIDTHS = (1, 8, 64)
WORKER_COUNTS = (1, 2, 4)
THREADED_REQUIRED_SPEEDUP = 1.3

# The process tier pays pool start-up and result pickling, so it is measured
# on a full multi-seed detection (where the per-seed work dwarfs both) and
# its speedup guard applies on hosts with >= 4 cores.
PROCESS_VERTICES = 4_096
PROCESS_BLOCKS = 8
PROCESS_SEEDS = 32
PROCESS_WORKER_COUNTS = (1, 2, 4)
PROCESS_REQUIRED_SPEEDUP = 1.5
PROCESS_REQUIRED_CORES = 4

# The resident session amortises the per-call setup of the process tier
# (graph broadcast, pool fork) across a stream of small requests, so it is
# measured as repeated few-seed detections on the process-tier PPM; the
# speedup guard applies on hosts with >= 4 cores, the identity and
# single-broadcast checks everywhere.
SESSION_REPEATS = 6
SESSION_SEEDS_PER_CALL = 4
SESSION_WORKERS = 4
SESSION_REQUIRED_SPEEDUP = 2.0

# The coalescing service amortises whole batched passes: N pending
# single-seed requests become one detect_batch wave instead of N sequential
# single-seed passes.  Measured as a fixed stream of distinct single-seed
# requests on the process-tier PPM, submitted by {1, 4, 16} concurrent
# client threads; the >= 2x guard (16 clients vs the serialized session
# loop) applies on hosts with >= 4 cores, the identity and coalescing
# checks everywhere.
SERVICE_REQUESTS = 16
SERVICE_CONCURRENCY = (1, 4, 16)
SERVICE_REQUIRED_SPEEDUP = 2.0


def _best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _random_edge_array(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, NUM_VERTICES, size=(NUM_EDGES, 2), dtype=np.int64)
    return edges[edges[:, 0] != edges[:, 1]]


@functools.lru_cache(maxsize=1)
def run_benchmark() -> dict[str, float]:
    """Run every measurement once and return ``{metric: value}`` timings."""
    results: dict[str, float] = {}
    edges = _random_edge_array()

    # -- construction ---------------------------------------------------
    results["construct_vectorized_s"] = _best_of(
        lambda: Graph.from_edge_array(NUM_VERTICES, edges)
    )
    results["construct_scalar_s"] = _best_of(
        lambda: scalar_csr_arrays(NUM_VERTICES, map(tuple, edges.tolist())), repeats=1
    )
    results["construct_speedup"] = (
        results["construct_scalar_s"] / results["construct_vectorized_s"]
    )
    graph = Graph.from_edge_array(NUM_VERTICES, edges)

    # -- subset kernels -------------------------------------------------
    subset = np.random.default_rng(1).permutation(NUM_VERTICES)[: NUM_VERTICES // 2]
    subset_list = subset.tolist()
    results["cut_vectorized_s"] = _best_of(lambda: graph.cut_size(subset))
    results["cut_scalar_s"] = _best_of(lambda: scalar_cut_size(graph, subset_list), repeats=1)
    results["cut_speedup"] = results["cut_scalar_s"] / results["cut_vectorized_s"]
    results["induced_vectorized_s"] = _best_of(lambda: graph.induced_subgraph(subset))
    results["induced_scalar_s"] = _best_of(
        lambda: scalar_induced_subgraph_edges(graph, subset_list), repeats=1
    )
    results["induced_speedup"] = (
        results["induced_scalar_s"] / results["induced_vectorized_s"]
    )
    results["count_vectorized_s"] = _best_of(lambda: graph.induced_edge_count(subset))
    results["count_scalar_s"] = _best_of(
        lambda: scalar_induced_edge_count(graph, subset_list), repeats=1
    )
    results["count_speedup"] = results["count_scalar_s"] / results["count_vectorized_s"]

    # -- 64-seed walk advance (operator build + one step per seed) ------
    seeds = np.random.default_rng(2).integers(0, NUM_VERTICES, size=NUM_SEEDS).tolist()

    def seed_scalar_walk_advance():
        # The seed code built the reverse operator per WalkDistribution via
        # transition_matrix(G).T — replicated here verbatim as the baseline.
        for s in seeds:
            operator = transition_matrix(graph).T.tocsr()
            distribution = np.zeros(NUM_VERTICES)
            distribution[s] = 1.0
            operator @ distribution

    def batched_walk_advance():
        BatchedWalkDistribution(graph, seeds).step()

    results["walk_advance_scalar_s"] = _best_of(seed_scalar_walk_advance, repeats=1)
    results["walk_advance_batched_s"] = _best_of(batched_walk_advance)
    results["walk_advance_speedup"] = (
        results["walk_advance_scalar_s"] / results["walk_advance_batched_s"]
    )

    # -- steady-state stepping (operators pre-built) --------------------
    operator = transition_matrix(graph).T.tocsr()
    matrix = np.zeros((NUM_VERTICES, NUM_SEEDS))
    matrix[seeds, np.arange(NUM_SEEDS)] = 1.0
    columns = [matrix[:, j].copy() for j in range(NUM_SEEDS)]
    results["step_scalar_s"] = _best_of(lambda: [operator @ c for c in columns])
    results["step_batched_s"] = _best_of(lambda: operator @ matrix)
    results["step_speedup"] = results["step_scalar_s"] / results["step_batched_s"]

    # -- worker scaling: threaded steady-state step ---------------------
    for workers in WORKER_COUNTS:
        walk = BatchedWalkDistribution(graph, seeds, workers=workers)
        results[f"step_workers{workers}_s"] = _best_of(walk.step)
    results["step_threads_speedup"] = results["step_workers1_s"] / min(
        results[f"step_workers{workers}_s"] for workers in WORKER_COUNTS if workers > 1
    )

    # -- batched mixing-set search (per walk step, B ∈ {1, 8, 64}) ------
    search_edges = np.random.default_rng(3).integers(
        0, SEARCH_VERTICES, size=(SEARCH_EDGES, 2), dtype=np.int64
    )
    search_graph = Graph.from_edge_array(
        SEARCH_VERTICES, search_edges[search_edges[:, 0] != search_edges[:, 1]]
    )
    search_seeds = (
        np.random.default_rng(4).integers(0, SEARCH_VERTICES, size=max(BATCH_WIDTHS)).tolist()
    )
    search_walk = BatchedWalkDistribution(search_graph, search_seeds)
    search_walk.step(5)
    distributions = np.array(search_walk.probabilities())
    initial_size = log_size(SEARCH_VERTICES)
    scalar_search = MixingSetSearch(search_graph, initial_size=initial_size)
    batched_search = BatchedMixingSetSearch(search_graph, initial_size=initial_size)
    for width in BATCH_WIDTHS:
        subset = np.ascontiguousarray(distributions[:, :width])
        per_column = [np.ascontiguousarray(subset[:, j]) for j in range(width)]
        results[f"search{width}_scalar_s"] = _best_of(
            lambda: [scalar_search.largest_mixing_set(c, 5) for c in per_column],
            repeats=1,
        )
        results[f"search{width}_batched_s"] = _best_of(
            lambda: batched_search.largest_mixing_sets(subset, 5), repeats=1
        )
        results[f"search{width}_speedup"] = (
            results[f"search{width}_scalar_s"] / results[f"search{width}_batched_s"]
        )

    # -- worker scaling: threaded B=64 mixing-set search ----------------
    widest = np.ascontiguousarray(distributions[:, : max(BATCH_WIDTHS)])
    for workers in WORKER_COUNTS:
        threaded_search = BatchedMixingSetSearch(
            search_graph, initial_size=initial_size, workers=workers
        )
        # Best-of-3 like the step timings: this row backs an enforced
        # acceptance threshold, so a single scheduler hiccup must not
        # deflate the cached speedup.
        results[f"search_workers{workers}_s"] = _best_of(
            lambda: threaded_search.largest_mixing_sets(widest, 5)
        )
    results["search_threads_speedup"] = results["search_workers1_s"] / min(
        results[f"search_workers{workers}_s"] for workers in WORKER_COUNTS if workers > 1
    )

    # -- parallel detection (shared batched walk, r ∈ {1, 8, 64}) -------
    n = PARALLEL_VERTICES
    p = min(1.0, 2.0 * np.log(n) ** 2 / n)
    q = 1.0 / n
    ppm = planted_partition_graph(n, PARALLEL_BLOCKS, p, q, seed=5)
    delta = ppm_expected_conductance(n, PARALLEL_BLOCKS, p, q)
    for width in BATCH_WIDTHS:
        # Both rows run through the unified facade (repro.api.detect): the
        # scalar per-seed loop as the "scalar" backend over the explicit
        # spread seeds, the shared-walk path as the "parallel" backend.
        spread = select_spread_seeds(ppm.graph, width, seed=6)
        results[f"parallel{width}_scalar_s"] = _best_of(
            lambda: detect(
                ppm.graph,
                backend="scalar",
                delta_hint=delta,
                config=RunConfig(seeds=tuple(spread)),
            ),
            repeats=1,
        )
        results[f"parallel{width}_batched_s"] = _best_of(
            lambda: detect(
                ppm.graph,
                backend="parallel",
                delta_hint=delta,
                config=RunConfig(seed=6, num_communities=width),
            ),
            repeats=1,
        )
        results[f"parallel{width}_speedup"] = (
            results[f"parallel{width}_scalar_s"] / results[f"parallel{width}_batched_s"]
        )

    # -- process executor (shared-memory worker pool) -------------------
    n = PROCESS_VERTICES
    p = min(1.0, 2.0 * np.log(n) ** 2 / n)
    q = 1.0 / n
    process_ppm = planted_partition_graph(n, PROCESS_BLOCKS, p, q, seed=7)
    process_delta = ppm_expected_conductance(n, PROCESS_BLOCKS, p, q)
    process_seeds = tuple(
        int(v)
        for v in np.random.default_rng(8).choice(n, size=PROCESS_SEEDS, replace=False)
    )

    def detect_with(executor: str, workers: int):
        return detect(
            process_ppm.graph,
            backend="batched",
            delta_hint=process_delta,
            config=RunConfig(seeds=process_seeds, workers=workers, executor=executor),
        )

    start = time.perf_counter()
    baseline_report = detect_with("thread", 1)
    results["process_serial_s"] = time.perf_counter() - start
    identical = 1.0
    for workers in PROCESS_WORKER_COUNTS:
        start = time.perf_counter()
        report = detect_with("process", workers)
        results[f"process_workers{workers}_s"] = time.perf_counter() - start
        if report.detection != baseline_report.detection:
            identical = 0.0
    results["process_identical"] = identical
    results["process_speedup"] = results["process_serial_s"] / min(
        results[f"process_workers{workers}_s"]
        for workers in PROCESS_WORKER_COUNTS
        if workers > 1
    )

    # -- storage tiers: the same detection on a memmapped CSR file ------
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        csr_path = os.path.join(tmp, "bench.csr")
        write_csr_graph(process_ppm.graph, csr_path)
        mapped_graph = read_csr_graph(csr_path)
        start = time.perf_counter()
        mapped_report = detect(
            mapped_graph,
            backend="batched",
            delta_hint=process_delta,
            config=RunConfig(seeds=process_seeds),
        )
        results["memmap_detect_s"] = time.perf_counter() - start
    results["memmap_identical"] = float(
        mapped_report.detection == baseline_report.detection
    )

    # -- sharded executor (row-partitioned walk, one shard per process) --
    sharded_identical = 1.0
    boundary_bytes = 0.0
    for workers in PROCESS_WORKER_COUNTS:
        start = time.perf_counter()
        report = detect(
            process_ppm.graph,
            backend="sharded",
            delta_hint=process_delta,
            config=RunConfig(seeds=process_seeds, workers=workers),
        )
        results[f"sharded_workers{workers}_s"] = time.perf_counter() - start
        if report.detection != baseline_report.detection:
            sharded_identical = 0.0
        exchange = report.metadata.get("exchange", {})
        boundary_bytes = float(exchange.get("boundary_bytes", 0))
    results["sharded_identical"] = sharded_identical
    # Boundary traffic of the widest run (workers = 4): what a real
    # deployment would put on the wire for this detection.
    results["sharded_boundary_bytes"] = boundary_bytes

    # -- resident session (amortised broadcast / pool / operator setup) --
    session_rng = np.random.default_rng(9)
    session_requests = [
        tuple(
            int(v)
            for v in session_rng.choice(n, size=SESSION_SEEDS_PER_CALL, replace=False)
        )
        for _ in range(SESSION_REPEATS)
    ]
    session_config = RunConfig(
        batch_size=SESSION_SEEDS_PER_CALL,
        workers=SESSION_WORKERS,
        executor="process",
    )

    start = time.perf_counter()
    one_shot_reports = [
        detect(
            process_ppm.graph,
            backend="batched",
            delta_hint=process_delta,
            config=session_config.with_overrides(seeds=request),
        )
        for request in session_requests
    ]
    results["session_oneshot_s"] = time.perf_counter() - start

    start = time.perf_counter()
    with DetectionSession(
        process_ppm.graph, config=session_config, delta_hint=process_delta
    ) as session:
        resident_reports = [
            session.detect(seeds=request) for request in session_requests
        ]
        results["session_broadcasts"] = float(session.broadcasts)
    results["session_resident_s"] = time.perf_counter() - start
    results["session_identical"] = float(
        all(
            fresh.detection == cached.detection
            for fresh, cached in zip(one_shot_reports, resident_reports)
        )
    )
    results["session_speedup"] = (
        results["session_oneshot_s"] / results["session_resident_s"]
    )

    # -- coalescing service (admission queue in front of one session) ----
    service_rng = np.random.default_rng(10)
    service_stream = tuple(
        int(v)
        for v in service_rng.choice(n, size=SERVICE_REQUESTS, replace=False)
    )
    service_config = RunConfig(workers=SESSION_WORKERS)

    start = time.perf_counter()
    with DetectionSession(
        process_ppm.graph, config=service_config, delta_hint=process_delta
    ) as serialized_session:
        serialized_replies = {
            vertex: serialized_session.detect(seeds=(vertex,))
            for vertex in service_stream
        }
    results["service_serialized_s"] = time.perf_counter() - start

    service_identical = 1.0
    for clients in SERVICE_CONCURRENCY:
        shards = [service_stream[index::clients] for index in range(clients)]
        replies: dict[int, RunReport] = {}
        replies_lock = threading.Lock()
        client_barrier = threading.Barrier(clients)

        def serve_shard(shard: tuple[int, ...]) -> None:
            client_barrier.wait()
            futures = [(vertex, service.submit(vertex)) for vertex in shard]
            for vertex, future in futures:
                report = future.result(timeout=600)
                with replies_lock:
                    replies[vertex] = report

        start = time.perf_counter()
        with DetectionService(
            process_ppm.graph, config=service_config, delta_hint=process_delta
        ) as service:
            client_threads = [
                threading.Thread(target=serve_shard, args=(shard,))
                for shard in shards
            ]
            for thread in client_threads:
                thread.start()
            for thread in client_threads:
                thread.join()
            service_metrics = service.metrics()
        results[f"service_clients{clients}_s"] = time.perf_counter() - start
        results[f"service_clients{clients}_waves"] = float(service_metrics["waves"])
        if any(
            replies[vertex].detection != serialized_replies[vertex].detection
            for vertex in service_stream
        ):
            service_identical = 0.0
    results["service_identical"] = service_identical
    results["service_speedup"] = (
        results["service_serialized_s"]
        / results[f"service_clients{max(SERVICE_CONCURRENCY)}_s"]
    )
    return results


def print_table(results: dict[str, float]) -> None:
    rows = [
        ("construction (1M edges)", "construct_scalar_s", "construct_vectorized_s", "construct_speedup"),
        ("cut_size (100k subset)", "cut_scalar_s", "cut_vectorized_s", "cut_speedup"),
        ("induced_edge_count", "count_scalar_s", "count_vectorized_s", "count_speedup"),
        ("induced_subgraph", "induced_scalar_s", "induced_vectorized_s", "induced_speedup"),
        ("64-seed walk advance", "walk_advance_scalar_s", "walk_advance_batched_s", "walk_advance_speedup"),
        ("64-seed steady step", "step_scalar_s", "step_batched_s", "step_speedup"),
    ]
    for width in BATCH_WIDTHS:
        rows.append(
            (
                f"mixing search B={width}",
                f"search{width}_scalar_s",
                f"search{width}_batched_s",
                f"search{width}_speedup",
            )
        )
    for width in BATCH_WIDTHS:
        rows.append(
            (
                f"parallel detect r={width}",
                f"parallel{width}_scalar_s",
                f"parallel{width}_batched_s",
                f"parallel{width}_speedup",
            )
        )
    print(f"{'kernel':26s} {'scalar [s]':>11s} {'vectorized [s]':>15s} {'speedup':>9s}")
    for label, scalar_key, vector_key, speedup_key in rows:
        print(
            f"{label:26s} {results[scalar_key]:11.4f} "
            f"{results[vector_key]:15.4f} {results[speedup_key]:8.1f}x"
        )
    print()
    print_workers_table(results)


def print_workers_table(results: dict[str, float]) -> None:
    """Print the workers ∈ {1, 2, 4} scaling table of the two threaded kernels."""
    header = "".join(f"{f'workers={w} [s]':>15s}" for w in WORKER_COUNTS)
    print(f"{'threaded kernel':26s}{header} {'best speedup':>13s}")
    for label, prefix, speedup_key in (
        ("64-seed steady step", "step_workers", "step_threads_speedup"),
        (f"mixing search B={max(BATCH_WIDTHS)}", "search_workers", "search_threads_speedup"),
        (f"process detect {PROCESS_SEEDS} seeds", "process_workers", "process_speedup"),
    ):
        timings = "".join(f"{results[f'{prefix}{w}_s']:15.4f}" for w in WORKER_COUNTS)
        print(f"{label:26s}{timings} {results[speedup_key]:12.1f}x")
    print(
        f"{'(process serial baseline)':26s}{results['process_serial_s']:15.4f} "
        f"identical={results['process_identical']:.0f}"
    )
    sharded = "".join(
        f"{results[f'sharded_workers{w}_s']:15.4f}" for w in PROCESS_WORKER_COUNTS
    )
    print(
        f"{'sharded detect (k shards)':26s}{sharded} "
        f"identical={results['sharded_identical']:.0f}"
    )
    print(
        f"memmapped CSR detect: {results['memmap_detect_s']:.4f}s "
        f"(identical={results['memmap_identical']:.0f}); "
        f"sharded boundary traffic at k=4: "
        f"{results['sharded_boundary_bytes'] / 1e6:.2f} MB"
    )
    print(
        f"resident session ({SESSION_REPEATS} requests x {SESSION_SEEDS_PER_CALL} "
        f"seeds, workers={SESSION_WORKERS}): "
        f"one-shot {results['session_oneshot_s']:.4f}s, "
        f"session {results['session_resident_s']:.4f}s "
        f"({results['session_speedup']:.1f}x, "
        f"broadcasts={results['session_broadcasts']:.0f}, "
        f"identical={results['session_identical']:.0f})"
    )
    service_levels = ", ".join(
        f"x{clients} {results[f'service_clients{clients}_s']:.4f}s "
        f"({results[f'service_clients{clients}_waves']:.0f} waves)"
        for clients in SERVICE_CONCURRENCY
    )
    print(
        f"coalescing service ({SERVICE_REQUESTS} single-seed requests): "
        f"serialized {results['service_serialized_s']:.4f}s, {service_levels} "
        f"({results['service_speedup']:.1f}x at x{max(SERVICE_CONCURRENCY)}, "
        f"identical={results['service_identical']:.0f})"
    )
    cores = os.cpu_count() or 1
    print(f"(host has {cores} core{'s' if cores != 1 else ''}; "
          f"threaded and process results are identical to workers=1 at any count)")


@pytest.mark.perf
def test_construction_speedup_at_least_10x():
    results = run_benchmark()
    assert results["construct_speedup"] >= REQUIRED_SPEEDUP, results


@pytest.mark.perf
def test_batched_walk_advance_speedup_at_least_10x():
    results = run_benchmark()
    assert results["walk_advance_speedup"] >= REQUIRED_SPEEDUP, results


@pytest.mark.perf
def test_subset_kernels_faster_than_scalar():
    results = run_benchmark()
    assert results["cut_speedup"] > 1.0, results
    assert results["count_speedup"] > 1.0, results
    assert results["induced_speedup"] > 1.0, results


@pytest.mark.perf
def test_batched_mixing_search_beats_per_column_loop_at_64():
    """Acceptance: one batched search call must beat 64 sequential scans."""
    results = run_benchmark()
    assert results["search64_speedup"] > 1.0, results


@pytest.mark.perf
def test_parallel_detection_beats_scalar_loop_at_64():
    results = run_benchmark()
    assert results["parallel64_speedup"] > 1.0, results


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="threaded speedups need >= 2 cores; equivalence tests gate single-core runners",
)
def test_threaded_steady_step_speedup_at_least_1_3x():
    """Acceptance: the column-blocked step must scale on multi-core hosts."""
    results = run_benchmark()
    assert results["step_threads_speedup"] >= THREADED_REQUIRED_SPEEDUP, results


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="threaded speedups need >= 2 cores; equivalence tests gate single-core runners",
)
def test_threaded_search_speedup_at_least_1_3x():
    """Acceptance: the lane-blocked B=64 search must scale on multi-core hosts."""
    results = run_benchmark()
    assert results["search_threads_speedup"] >= THREADED_REQUIRED_SPEEDUP, results


@pytest.mark.perf
def test_process_executor_detections_identical_to_serial():
    """The process tier must reproduce the serial facade's detections exactly."""
    results = run_benchmark()
    assert results["process_identical"] == 1.0, results


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < PROCESS_REQUIRED_CORES,
    reason="process-tier speedup needs >= 4 cores; the identity tests gate smaller hosts",
)
def test_process_executor_speedup_at_least_1_5x():
    """Acceptance: the shared-memory process pool must scale on >= 4-core hosts."""
    results = run_benchmark()
    assert results["process_speedup"] >= PROCESS_REQUIRED_SPEEDUP, results


@pytest.mark.perf
def test_memmap_detection_identical_to_in_ram():
    """A detection on the memmapped CSR file must equal the in-RAM one exactly."""
    results = run_benchmark()
    assert results["memmap_identical"] == 1.0, results


@pytest.mark.perf
def test_sharded_detections_identical_to_serial():
    """The sharded executor must reproduce the serial detections at every k."""
    results = run_benchmark()
    assert results["sharded_identical"] == 1.0, results
    assert results["sharded_boundary_bytes"] > 0.0, results


@pytest.mark.perf
def test_session_detections_identical_and_broadcast_once():
    """The resident session must answer exactly like one-shot, broadcasting once."""
    results = run_benchmark()
    assert results["session_identical"] == 1.0, results
    assert results["session_broadcasts"] == 1.0, results


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < PROCESS_REQUIRED_CORES,
    reason="session speedup needs >= 4 cores; the identity test gates smaller hosts",
)
def test_session_beats_per_call_setup_at_least_2x():
    """Acceptance: amortising the broadcast/pool must pay >= 2x on >= 4-core hosts."""
    results = run_benchmark()
    assert results["session_speedup"] >= SESSION_REQUIRED_SPEEDUP, results


@pytest.mark.perf
def test_service_replies_identical_and_coalesced():
    """Service replies must equal the serialized session's, in fewer waves."""
    results = run_benchmark()
    assert results["service_identical"] == 1.0, results
    widest = max(SERVICE_CONCURRENCY)
    assert results[f"service_clients{widest}_waves"] < SERVICE_REQUESTS, results


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < PROCESS_REQUIRED_CORES,
    reason="service speedup needs >= 4 cores; the identity/coalescing test gates smaller hosts",
)
def test_service_beats_serialized_session_at_least_2x():
    """Acceptance: coalescing 16 concurrent clients must pay >= 2x on >= 4-core hosts."""
    results = run_benchmark()
    assert results["service_speedup"] >= SERVICE_REQUIRED_SPEEDUP, results


def machine_facts() -> dict[str, object]:
    """Facts that make an archived timing interpretable on another host."""
    import scipy

    import repro

    return {
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count() or 1,
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "scipy_version": scipy.__version__,
        "repro_version": getattr(repro, "__version__", "unknown"),
    }


def dump_json(results: dict[str, float], path: str) -> None:
    """Archive the timings plus machine facts and enforced thresholds."""
    document = {
        "benchmark": "bench_graph_kernel",
        "machine": machine_facts(),
        "workload": {
            "num_vertices": NUM_VERTICES,
            "num_edges": NUM_EDGES,
            "num_seeds": NUM_SEEDS,
            "search_vertices": SEARCH_VERTICES,
            "search_edges": SEARCH_EDGES,
            "parallel_vertices": PARALLEL_VERTICES,
            "parallel_blocks": PARALLEL_BLOCKS,
            "batch_widths": list(BATCH_WIDTHS),
            "worker_counts": list(WORKER_COUNTS),
            "process_vertices": PROCESS_VERTICES,
            "process_seeds": PROCESS_SEEDS,
            "session_repeats": SESSION_REPEATS,
            "session_seeds_per_call": SESSION_SEEDS_PER_CALL,
            "service_requests": SERVICE_REQUESTS,
            "service_concurrency": list(SERVICE_CONCURRENCY),
        },
        "thresholds": {
            "required_speedup": REQUIRED_SPEEDUP,
            "threaded_required_speedup": THREADED_REQUIRED_SPEEDUP,
            "process_required_speedup": PROCESS_REQUIRED_SPEEDUP,
            "session_required_speedup": SESSION_REQUIRED_SPEEDUP,
            "service_required_speedup": SERVICE_REQUIRED_SPEEDUP,
        },
        "results": {key: results[key] for key in sorted(results)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"\nwrote {path}")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Graph-kernel throughput benchmark (see module docstring)."
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also archive the timings + machine facts as JSON at PATH",
    )
    arguments = parser.parse_args(argv)
    table = run_benchmark()
    print_table(table)
    if arguments.json:
        dump_json(table, arguments.json)
    failed = []
    if table["construct_speedup"] < REQUIRED_SPEEDUP:
        failed.append("construction")
    if table["walk_advance_speedup"] < REQUIRED_SPEEDUP:
        failed.append("walk advance")
    if table["search64_speedup"] <= 1.0:
        failed.append("64-column mixing search")
    if table["process_identical"] != 1.0:
        failed.append("process-tier detection identity")
    if table["memmap_identical"] != 1.0:
        failed.append("memmapped-storage detection identity")
    if table["sharded_identical"] != 1.0:
        failed.append("sharded-executor detection identity")
    if table["session_identical"] != 1.0 or table["session_broadcasts"] != 1.0:
        failed.append("resident-session identity/broadcast")
    if (
        table["service_identical"] != 1.0
        or table[f"service_clients{max(SERVICE_CONCURRENCY)}_waves"]
        >= SERVICE_REQUESTS
    ):
        failed.append("coalescing-service identity/wave count")
    multicore = (os.cpu_count() or 1) >= 2
    manycore = (os.cpu_count() or 1) >= PROCESS_REQUIRED_CORES
    if multicore:
        if table["step_threads_speedup"] < THREADED_REQUIRED_SPEEDUP:
            failed.append("threaded steady step")
        if table["search_threads_speedup"] < THREADED_REQUIRED_SPEEDUP:
            failed.append("threaded mixing search")
    if manycore:
        if table["process_speedup"] < PROCESS_REQUIRED_SPEEDUP:
            failed.append("process executor")
        if table["session_speedup"] < SESSION_REQUIRED_SPEEDUP:
            failed.append("resident session")
        if table["service_speedup"] < SERVICE_REQUIRED_SPEEDUP:
            failed.append("coalescing service")
    if failed:
        raise SystemExit(f"speedup thresholds not met for: {', '.join(failed)}")
    print(
        f"\nacceptance: construction and 64-seed walk advance >= {REQUIRED_SPEEDUP}x, "
        f"64-column batched search > 1x, process detections identical"
        + (
            f", threaded step/search >= {THREADED_REQUIRED_SPEEDUP}x"
            if multicore
            else " (single core: threaded thresholds not enforced)"
        )
        + (
            f", process tier >= {PROCESS_REQUIRED_SPEEDUP}x, "
            f"resident session >= {SESSION_REQUIRED_SPEEDUP}x, "
            f"coalescing service >= {SERVICE_REQUIRED_SPEEDUP}x"
            if manycore
            else (
                f" (< {PROCESS_REQUIRED_CORES} cores: process/session "
                "thresholds not enforced)"
            )
        )
    )


if __name__ == "__main__":
    main()
