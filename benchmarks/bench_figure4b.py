"""Benchmark: Figure 4b — accuracy vs number of communities, fixed total size.

Paper's claim: with the total size fixed at n = 8 * 2^10, accuracy decreases
slightly as r grows, and — comparing against Figure 4a at the same r — the
accuracy is higher when the communities are bigger.
"""

from __future__ import annotations

from repro.experiments import figure4a_grid, figure4b_grid, render_experiment


def test_figure4b_fixed_total_size(once, capsys):
    table = once(
        figure4b_grid,
        block_counts=(2, 4, 8),
        total_size=8 * 1024,
        ratio_specs=("1.2log2^2(n)",),
        trials=2,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    scores = {int(row.parameters["r"]): row.measurements["f_score"] for row in table.rows}
    assert all(score > 0.75 for score in scores.values())
    assert scores[2] >= scores[8] - 0.05


def test_figure4_community_size_effect(once, capsys):
    """Paper: at equal r, larger communities (4a at r=8) score at least as well
    as the same r with smaller communities (4b at r=8 has size 2^10 too, so
    compare r=2: 4a has 2^10-vertex blocks in a 2^11 graph, 4b has 2^12-vertex
    blocks in a 2^13 graph — the bigger-community setting should not be worse)."""
    small_blocks = once(
        figure4a_grid,
        block_counts=(2,),
        community_size=1024,
        ratio_specs=("1.2log2^2(n)",),
        trials=2,
        seed=1,
    )
    big_blocks = figure4b_grid(
        block_counts=(2,),
        total_size=8 * 1024,
        ratio_specs=("1.2log2^2(n)",),
        trials=2,
        seed=1,
    )
    with capsys.disabled():
        print()
        print(render_experiment(small_blocks))
        print(render_experiment(big_blocks))
    small_score = small_blocks.rows[0].measurements["f_score"]
    big_score = big_blocks.rows[0].measurements["f_score"]
    assert big_score >= small_score - 0.05
