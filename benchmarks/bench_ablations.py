"""Benchmark: ablations of the CDRW design choices called out in DESIGN.md.

Three knobs of Algorithm 1 are ablated on the same PPM instance:

* the candidate-size schedule (geometric ``(1+1/8e)`` growth vs linear +1),
* the stopping parameter δ (the analytic conductance vs fixed alternatives),
* the candidate-scan policy (scan-all vs stop-at-first-failure, the literal
  pseudocode reading — see DESIGN.md §5).
"""

from __future__ import annotations

import math

from repro.api import RunConfig, detect
from repro.core import CDRWParameters
from repro.experiments.runner import ExperimentTable
from repro.experiments.reporting import render_experiment
from repro.graphs import planted_partition_graph, ppm_expected_conductance
from repro.metrics import average_f_score


def _instance():
    n, r = 1024, 2
    p = 2 * math.log(n) ** 2 / n
    q = 0.6 / n
    ppm = planted_partition_graph(n, r, p, q, seed=5)
    delta = ppm_expected_conductance(n, r, p, q)
    return ppm, delta


def _run_variants(variants):
    ppm, delta = _instance()
    table = ExperimentTable(
        name="cdrw_ablations",
        description="F-score and detections of CDRW parameter variants on one PPM instance",
    )
    for label, parameters in variants.items():
        detection = detect(
            ppm.graph,
            backend="scalar",
            params=parameters,
            delta_hint=delta,
            config=RunConfig(seed=3),
        ).detection
        table.add_row(
            parameters={"variant": label},
            measurements={
                "f_score": average_f_score(detection, ppm.partition),
                "communities": float(detection.num_communities),
                "total_walk_steps": float(detection.total_walk_steps()),
            },
        )
    return table


def test_ablation_size_schedule_and_scan_policy(once, capsys):
    variants = {
        "paper_defaults": CDRWParameters(),
        "linear_schedule": CDRWParameters(size_schedule="linear"),
        "first_failure_scan": CDRWParameters(stop_at_first_failure=True),
        "no_mass_condition": CDRWParameters(min_mass=0.0),
    }
    table = once(_run_variants, variants)
    with capsys.disabled():
        print()
        print(render_experiment(table))
    scores = {str(row.parameters["variant"]): row.measurements["f_score"] for row in table.rows}
    assert scores["paper_defaults"] > 0.85
    # The linear schedule is the exhaustive reference: the geometric schedule
    # must not lose accuracy against it.
    assert scores["paper_defaults"] >= scores["linear_schedule"] - 0.05
    # The mass condition is what keeps the localized search honest (DESIGN.md §5).
    assert scores["paper_defaults"] >= scores["no_mass_condition"] - 0.01


def test_ablation_stopping_delta(once, capsys):
    variants = {
        "delta_conductance": CDRWParameters(),
        "delta_0.1": CDRWParameters(delta=0.1),
        "delta_1.0": CDRWParameters(delta=1.0),
    }
    table = once(_run_variants, variants)
    with capsys.disabled():
        print()
        print(render_experiment(table))
    scores = {str(row.parameters["variant"]): row.measurements["f_score"] for row in table.rows}
    # The paper's δ = Φ_G choice should be at least as good as a crude large δ.
    assert scores["delta_conductance"] >= scores["delta_1.0"] - 0.05
