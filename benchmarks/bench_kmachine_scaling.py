"""Benchmark: Section III-B — k-machine round complexity of CDRW.

Paper's claim: simulating CDRW on k machines via the Conversion Theorem costs
Õ((n²/k² + n/(kr))(p + q(r−1))) rounds — i.e. the round complexity improves
between linearly (k^-1) and quadratically (k^-2) as machines are added.
"""

from __future__ import annotations

from repro.experiments import kmachine_scaling, render_experiment


def test_kmachine_round_scaling(once, capsys):
    table = once(
        kmachine_scaling,
        n=1024,
        num_blocks=2,
        p_spec="2log2n/n",
        q_spec="0.6/n",
        machine_counts=(2, 4, 8, 16, 32),
        seed=0,
    )
    with capsys.disabled():
        print()
        print(render_experiment(table))

    rounds = table.series("rounds")
    machine_counts = [int(row.parameters["k"]) for row in table.rows]
    # Monotone improvement with more machines.
    assert all(a > b for a, b in zip(rounds, rounds[1:]))
    # Scaling between k^-1 and k^-2: doubling k improves rounds by a factor in
    # (1.3, 4.5) (slack for integer rounding and the balanced-partition noise).
    for (k_small, r_small), (k_big, r_big) in zip(
        zip(machine_counts, rounds), zip(machine_counts[1:], rounds[1:])
    ):
        factor = r_small / r_big
        assert 1.3 < factor < 4.5, f"k={k_small}->{k_big}: improvement {factor:.2f}"
    # The Conversion Theorem prediction decreases with k as well.
    predictions = table.series("conversion_prediction")
    assert all(a > b for a, b in zip(predictions, predictions[1:]))
