"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable on environments whose pip/setuptools are too
old for PEP 660 editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
