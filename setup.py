"""Setuptools packaging for the ``repro`` reproduction.

Installing the package (``pip install -e .``) also installs the ``repro``
console script, which exposes the unified detection facade
(``repro detect --backend ...``) and every figure/experiment command of
:mod:`repro.cli`.
"""

from setuptools import find_packages, setup

setup(
    name="repro-cdrw",
    version="1.4.0",
    description=(
        "Reproduction of 'Efficient Distributed Community Detection in the "
        "Stochastic Block Model' (Fathi, Molla, Pandurangan; ICDCS 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
